"""Consistent hashing — buckets ``B`` and ``NodeMap`` (Sec. II-A, Fig. 1).

The hash line is ``[0, r)``.  A key ``k`` lands at ``h'(k)`` and is served
by the bucket at ``h'(k)``'s *closest upper* position (circular), i.e.::

    h(k) = b_1                                   if h'(k) > b_p
           argmin_{b_i >= h'(k)} (b_i - h'(k))   otherwise

implemented as a binary search over the sorted bucket positions — the
``O(log₂ p)`` the paper's ``T_GBA`` analysis assumes.

The ring also owns **per-bucket load accounting** (bytes and record counts),
which Algorithm 1 line 10 needs to find "the fullest bucket referencing
``n``".  Loads are maintained incrementally by the insert/delete/migrate
paths; :meth:`check_accounting` cross-checks them against the node trees in
tests.

Practical note: :class:`~repro.core.elastic.ElasticCooperativeCache` pins a
**sentinel bucket at position r-1** on the initial node, so every bucket's
interval ``(b_{i-1}, b_i]`` is a contiguous hash range and the circular
wrap case never holds live records.  This keeps Alg. 1's median split (which
sweeps a *contiguous* B+-tree key range) exact without special-casing the
wrap bucket; the circular lookup semantics above are still implemented and
tested.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import TYPE_CHECKING, Iterable

from repro.sim.rng import stable_key_hash

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cachenode import CacheNode


class RingError(RuntimeError):
    """Raised on structurally invalid ring operations."""


class ConsistentHashRing:
    """The bucket sequence ``B`` and the ``NodeMap`` relation.

    Parameters
    ----------
    ring_range:
        ``r``: hash positions are integers in ``[0, r)``.
    hash_mode:
        ``"identity"`` (the paper's ``k mod r``) or ``"splitmix"``
        (bijective 64-bit mix, then ``mod r``).  See
        :class:`~repro.core.config.CacheConfig`.

    Examples
    --------
    >>> ring = ConsistentHashRing(ring_range=100)
    >>> ring.add_bucket(99, "n1")
    >>> ring.add_bucket(49, "n2")
    >>> ring.node_for_key(10)   # h'(10)=10 <= 49 -> bucket 49
    'n2'
    >>> ring.node_for_key(80)   # 49 < 80 <= 99 -> bucket 99
    'n1'
    """

    def __init__(self, ring_range: int, hash_mode: str = "identity") -> None:
        if ring_range < 2:
            raise RingError("ring_range must be >= 2")
        if hash_mode not in ("identity", "splitmix"):
            raise RingError(f"unknown hash_mode {hash_mode!r}")
        # splitmix64 is a bijection on 64-bit ints; using its full range
        # keeps h' collision-free (two distinct keys never share a hash
        # position, which the per-node trees rely on).  Identity mode uses
        # the caller's r and relies on the keyspace fitting inside it.
        self.ring_range = (1 << 64) if hash_mode == "splitmix" else ring_range
        self.hash_mode = hash_mode
        self.buckets: list[int] = []  #: sorted bucket positions, the paper's B
        self.node_map: dict[int, "CacheNode | object"] = {}  #: NodeMap[b] = n
        self.bucket_bytes: dict[int, int] = {}  #: ||b_i|| load accounting
        self.bucket_records: dict[int, int] = {}

    # ---------------------------------------------------------------- hash

    def hash_key(self, key: int) -> int:
        """The auxiliary fixed hash ``h'(k) = k mod r`` (or mixed variant).

        In identity mode, keys at or beyond ``r`` would alias (two distinct
        keys sharing one hash position corrupt the per-node index), so they
        are rejected rather than silently wrapped; experiments size ``r``
        to cover the keyspace, as the paper does.
        """
        if self.hash_mode == "identity":
            if not 0 <= key < self.ring_range:
                raise RingError(
                    f"key {key} outside identity hash range [0, {self.ring_range}); "
                    "enlarge ring_range or use hash_mode='splitmix'"
                )
            return key
        return stable_key_hash(key)

    def bucket_for_hkey(self, hkey: int) -> int:
        """``h(k)``: the closest upper bucket, wrapping circularly."""
        if not self.buckets:
            raise RingError("ring has no buckets")
        idx = bisect_left(self.buckets, hkey)
        if idx == len(self.buckets):  # h'(k) > b_p: wrap to b_1
            return self.buckets[0]
        return self.buckets[idx]

    def node_for_key(self, key: int):
        """Resolve a key to its responsible cache node."""
        return self.node_map[self.bucket_for_hkey(self.hash_key(key))]

    def node_for_hkey(self, hkey: int):
        """Resolve a pre-hashed position to its node."""
        return self.node_map[self.bucket_for_hkey(hkey)]

    # ------------------------------------------------------------- buckets

    def add_bucket(self, pos: int, node) -> None:
        """Introduce a bucket at ``pos`` referencing ``node`` (load zero)."""
        if not 0 <= pos < self.ring_range:
            raise RingError(f"bucket position {pos} outside [0, {self.ring_range})")
        if pos in self.node_map:
            raise RingError(f"bucket {pos} already exists")
        insort(self.buckets, pos)
        self.node_map[pos] = node
        self.bucket_bytes[pos] = 0
        self.bucket_records[pos] = 0

    def remove_bucket(self, pos: int) -> None:
        """Drop the bucket at ``pos``; its interval folds into the successor.

        The caller is responsible for having migrated the bucket's records
        first (its load must be zero).
        """
        if pos not in self.node_map:
            raise RingError(f"no bucket at {pos}")
        if self.bucket_records[pos]:
            raise RingError(f"bucket {pos} still holds {self.bucket_records[pos]} records")
        if len(self.buckets) == 1:
            raise RingError("cannot remove the last bucket")
        idx = bisect_left(self.buckets, pos)
        self.buckets.pop(idx)
        del self.node_map[pos]
        del self.bucket_bytes[pos]
        del self.bucket_records[pos]

    def reassign_bucket(self, pos: int, node) -> None:
        """Point an existing bucket at a different node (whole-bucket move)."""
        if pos not in self.node_map:
            raise RingError(f"no bucket at {pos}")
        self.node_map[pos] = node

    def buckets_of(self, node) -> list[int]:
        """All bucket positions referencing ``node``."""
        return [b for b in self.buckets if self.node_map[b] is node]

    def successor_owner(self, pos: int):
        """The buddy-placement rule: owner of the first bucket circularly
        after ``pos`` that references a *different* node.

        Replication places each bucket's copy on this node, so a whole-node
        failure (all of a node's buckets at once) never takes out both the
        primary and its replica.  Returns ``None`` when every bucket
        references the same node (nowhere distinct to replicate).
        """
        if pos not in self.node_map:
            raise RingError(f"no bucket at {pos}")
        owner = self.node_map[pos]
        idx = bisect_left(self.buckets, pos)
        for step in range(1, len(self.buckets)):
            candidate = self.buckets[(idx + step) % len(self.buckets)]
            node = self.node_map[candidate]
            if node is not owner and node != owner:
                return node
        return None

    def predecessor_bucket(self, pos: int) -> int:
        """The bucket circularly before ``pos`` (itself when alone)."""
        if pos not in self.node_map:
            raise RingError(f"no bucket at {pos}")
        idx = bisect_left(self.buckets, pos)
        return self.buckets[idx - 1]

    def interval_segments(self, pos: int) -> list[tuple[int, int]]:
        """The hash-line segment(s) bucket ``pos`` covers, as inclusive
        ``(lo, hi)`` pairs **in circular order**.

        For bucket ``b_i`` with predecessor ``b_{i-1}`` this is
        ``[b_{i-1}+1, b_i]``; the first bucket covers the circular tail
        ``[b_p+1, r-1]`` *followed by* ``[0, b_1]`` (the tail segment is
        empty — and omitted — when ``b_p == r-1``, i.e. whenever the
        sentinel bucket is present).  Circular ordering matters to GBA's
        median split: "the lowest key to the median" is circular distance
        from the interval's start, not absolute hash position.
        """
        if pos not in self.node_map:
            raise RingError(f"no bucket at {pos}")
        idx = bisect_left(self.buckets, pos)
        if len(self.buckets) == 1:
            return [(0, self.ring_range - 1)]
        if idx == 0:
            segments = []
            tail_lo = self.buckets[-1] + 1
            if tail_lo <= self.ring_range - 1:
                segments.append((tail_lo, self.ring_range - 1))
            segments.append((0, pos))
            return segments
        return [(self.buckets[idx - 1] + 1, pos)]

    # ---------------------------------------------------------- accounting

    def record_insert(self, hkey: int, nbytes: int) -> int:
        """Charge one inserted record to its bucket; returns the bucket."""
        pos = self.bucket_for_hkey(hkey)
        self.bucket_bytes[pos] += nbytes
        self.bucket_records[pos] += 1
        return pos

    def record_delete(self, hkey: int, nbytes: int) -> int:
        """Release one deleted record from its bucket; returns the bucket."""
        pos = self.bucket_for_hkey(hkey)
        self.bucket_bytes[pos] -= nbytes
        self.bucket_records[pos] -= 1
        if self.bucket_bytes[pos] < 0 or self.bucket_records[pos] < 0:
            raise RingError(f"bucket {pos} accounting went negative")
        return pos

    def clear_load(self, pos: int) -> tuple[int, int]:
        """Zero a bucket's accounting, returning ``(bytes, records)`` lost.

        Used by failure repair: when a node dies, the records in its
        buckets are gone (not migrated), so the accounting is written off
        rather than transferred — the failure-path counterpart of
        :meth:`transfer_load`.
        """
        if pos not in self.node_map:
            raise RingError(f"no bucket at {pos}")
        lost = (self.bucket_bytes[pos], self.bucket_records[pos])
        self.bucket_bytes[pos] = 0
        self.bucket_records[pos] = 0
        return lost

    def transfer_load(self, src: int, dst: int, nbytes: int, nrecords: int) -> None:
        """Move accounted load between buckets (used by splits)."""
        for pos in (src, dst):
            if pos not in self.node_map:
                raise RingError(f"no bucket at {pos}")
        self.bucket_bytes[src] -= nbytes
        self.bucket_records[src] -= nrecords
        self.bucket_bytes[dst] += nbytes
        self.bucket_records[dst] += nrecords
        if self.bucket_bytes[src] < 0 or self.bucket_records[src] < 0:
            raise RingError(f"bucket {src} accounting went negative")

    def fullest_bucket_of(self, node) -> int:
        """Alg. 1 line 10: ``argmax_{b_i} ||b_i||`` with ``NodeMap[b_i] = n``.

        Ties break toward the lowest position, deterministically.
        """
        positions = self.buckets_of(node)
        if not positions:
            raise RingError(f"node {node!r} owns no buckets")
        return max(positions, key=lambda b: (self.bucket_bytes[b], -b))

    def node_bytes(self, node) -> int:
        """Accounted bytes across all of ``node``'s buckets."""
        return sum(self.bucket_bytes[b] for b in self.buckets_of(node))

    def nodes(self) -> list:
        """Distinct nodes currently referenced by the ring (stable order)."""
        seen: list = []
        for b in self.buckets:
            node = self.node_map[b]
            if all(node is not s for s in seen):
                seen.append(node)
        return seen

    def check_accounting(self, nodes: Iterable) -> None:
        """Assert bucket loads agree with node-level usage (test hook)."""
        for node in nodes:
            accounted = self.node_bytes(node)
            actual = node.used_bytes
            assert accounted == actual, (
                f"ring accounts {accounted} bytes for {node!r}, node reports {actual}"
            )
