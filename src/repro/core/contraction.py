"""Cache contraction — the ε-periodic node-merge heuristic (Sec. III-B).

"After each interval of ε slice expirations, we identify the two least
loaded nodes and check whether merging their data would cause an overflow.
If not, then their data is migrated using methods tantamount to
Algorithm 2" — and the emptied instance is released, which is where the
Cloud's cost incentive pays out.

Churn avoidance: the merge only proceeds if the coalesced data fits within
``merge_threshold`` (the paper's 65 %) of the destination's capacity, so a
merge is never immediately undone by the next overflow split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.cloud.network import NetworkModel
from repro.core.cachenode import CacheNode
from repro.core.config import ContractionConfig
from repro.core.ring import ConsistentHashRing
from repro.sim.clock import SimClock


@dataclass(frozen=True)
class MergeEvent:
    """One completed node merge (source drained into destination)."""

    step: int
    time: float
    src_id: str
    dest_id: str
    records_moved: int
    bytes_moved: int
    migration_s: float


class Contractor:
    """Merges lightly loaded nodes and releases the surplus instance.

    Parameters
    ----------
    ring, clock, network, config:
        Shared cache machinery; see :class:`~repro.core.gba.GreedyBucketAllocator`.
    live_nodes:
        Callback returning the current node population ``N``.
    release_node:
        Callback that unregisters a drained :class:`CacheNode` and
        terminates its instance (supplied by the elastic cache).
    """

    def __init__(
        self,
        *,
        ring: ConsistentHashRing,
        clock: SimClock,
        network: NetworkModel,
        config: ContractionConfig,
        live_nodes: Callable[[], list[CacheNode]],
        release_node: Callable[[CacheNode], None],
    ) -> None:
        self.ring = ring
        self.clock = clock
        self.network = network
        self.config = config
        self.live_nodes = live_nodes
        self.release_node = release_node
        self.merge_events: list[MergeEvent] = []
        self._expirations_seen = 0

    def on_slice_expired(self) -> MergeEvent | None:
        """Count a slice expiry; attempt contraction every ε expirations."""
        if not self.config.enabled:
            return None
        self._expirations_seen += 1
        if self._expirations_seen % self.config.epsilon_slices != 0:
            return None
        return self.try_contract()

    def try_contract(self) -> MergeEvent | None:
        """One contraction attempt.  Returns the merge, or ``None``.

        Identifying the two least-loaded nodes is the paper's O(1) step
        (they keep a load-sorted list; we pay an O(|N|) min over the tiny
        node population).  The merge itself is a whole-node sweep-migrate.
        """
        nodes = self.live_nodes()
        if len(nodes) <= max(1, self.config.min_nodes):
            return None

        by_load = sorted(nodes, key=lambda n: (n.used_bytes, n.node_id))
        src, dest = by_load[0], by_load[1]

        merged = src.used_bytes + dest.used_bytes
        if merged > self.config.merge_threshold * dest.capacity_bytes:
            return None  # would defeat churn avoidance

        return self._merge(src, dest)

    def _merge(self, src: CacheNode, dest: CacheNode) -> MergeEvent:
        """Drain ``src`` into ``dest``, repoint its buckets, release it."""
        records = [rec for _, rec in src.tree.items()]
        bytes_moved = sum(r.nbytes for r in records)

        migration_s = self.network.transfer_time(bytes_moved, len(records))
        self.clock.advance(migration_s)

        for rec in records:
            src.delete(rec.hkey)
            dest.insert(rec)
        # Bucket loads travel with the buckets — reassign, don't recount.
        for pos in self.ring.buckets_of(src):
            self.ring.reassign_bucket(pos, dest)

        event = MergeEvent(
            step=self.clock.step,
            time=self.clock.now,
            src_id=src.node_id,
            dest_id=dest.node_id,
            records_moved=len(records),
            bytes_moved=bytes_moved,
            migration_s=migration_s,
        )
        self.merge_events.append(event)
        self.release_node(src)
        return event
