"""Sliding-window decay eviction (Sec. III-B, Fig. 2).

A streaming view of user interest: the window ``T = (t_1, ..., t_m)`` holds
the keys queried in each of the last ``m`` time slices (``t_1`` newest).
When a slice expires (reaches ``t_{m+1}``), every key in it is scored::

    λ(k) = Σ_{i=1..m} α^{i-1} · |{k ∈ t_i}|

and evicted if ``λ(k) < T_λ``.  Recent queries are rewarded (exponent 0);
old ones decay.  The baseline threshold ``T_λ = α^{m-1}`` keeps any key
queried at least once within the window; Fig. 7 fixes the threshold while
shrinking α, which makes *older-than-log_α(T_λ)* appearances insufficient —
"a smaller decay value would lead to more aggressive eviction".

Complexity: scoring iterates only a key's **actual appearance slices**
(maintained incrementally), not all ``m`` slices — ``T_evict`` stays
proportional to the window's query volume, matching the paper's "its
contribution can be assumed trivial" observation even at ``m = 400``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.config import EvictionConfig


@dataclass
class EvictionBatch:
    """Result of one slice expiry."""

    slice_id: int
    candidates: int  #: distinct keys in the expired slice
    evicted_keys: list[int] = field(default_factory=list)
    kept: int = 0


class SlidingWindowEvictor:
    """The global query-interest window.

    Lives at the coordinator; records **every** query (hit or miss) and, on
    each slice expiry, returns the keys whose decayed score fell below
    ``T_λ``.  The cache applies the evictions; this class never touches
    storage.

    Examples
    --------
    >>> ev = SlidingWindowEvictor(EvictionConfig(window_slices=2, alpha=0.5,
    ...                                          threshold=0.6))
    >>> ev.record(7)
    >>> for _ in range(3):
    ...     batch = ev.end_slice()   # key 7's slice expires on the 3rd call
    >>> batch.evicted_keys           # α^2·0 within window -> 0 < 0.6
    [7]
    """

    def __init__(self, config: EvictionConfig) -> None:
        if not config.enabled:
            raise ValueError("SlidingWindowEvictor requires a finite window")
        self.config = config
        self.m: int = config.window_slices  # type: ignore[assignment]
        self.alpha = config.alpha
        self.threshold = config.effective_threshold
        #: closed slices, oldest first: (slice_id, {key: count})
        self._slices: deque[tuple[int, dict[int, int]]] = deque()
        self._current_id = 0
        self._current: dict[int, int] = {}
        #: per-key appearance history: key -> list of [slice_id, count]
        self._appearances: dict[int, list[list[int]]] = {}
        self.expirations = 0

    # ------------------------------------------------------------- record

    def record(self, key: int) -> None:
        """Note one query for ``key`` in the current (open) slice."""
        self._current[key] = self._current.get(key, 0) + 1
        hist = self._appearances.setdefault(key, [])
        if hist and hist[-1][0] == self._current_id:
            hist[-1][1] += 1
        else:
            hist.append([self._current_id, 1])

    def score(self, key: int) -> float:
        """Current ``λ(k)`` over the closed window slices (diagnostic)."""
        if not self._slices:
            return 0.0
        newest_id = self._slices[-1][0]
        oldest_id = self._slices[0][0]
        lam = 0.0
        for sid, count in self._appearances.get(key, ()):  # noqa: B905
            if oldest_id <= sid <= newest_id:
                lam += (self.alpha ** (newest_id - sid)) * count
        return lam

    # ------------------------------------------------------------- expiry

    def end_slice(self) -> EvictionBatch:
        """Close the current slice; expire and score ``t_{m+1}`` if due.

        Returns an :class:`EvictionBatch`; its ``evicted_keys`` is empty
        until the window has filled (the first ``m`` slices expire nothing).

        If ``m`` was shrunk since the last call (the adaptive-window
        extension), every slice now beyond the window expires at once and
        the batches are merged.
        """
        self._slices.append((self._current_id, self._current))
        self._current_id += 1
        self._current = {}

        if len(self._slices) <= self.m:
            return EvictionBatch(slice_id=-1, candidates=0)

        merged: EvictionBatch | None = None
        while len(self._slices) > self.m:
            batch = self._expire_one()
            if merged is None:
                merged = batch
            else:
                merged.slice_id = batch.slice_id
                merged.candidates += batch.candidates
                merged.evicted_keys.extend(batch.evicted_keys)
                merged.kept += batch.kept
        assert merged is not None
        return merged

    def _expire_one(self) -> EvictionBatch:
        """Expire the oldest slice and score its keys."""
        expired_id, expired = self._slices.popleft()
        self.expirations += 1
        newest_id = self._slices[-1][0]
        batch = EvictionBatch(slice_id=expired_id, candidates=len(expired))

        for key in expired:
            hist = self._appearances.get(key)
            if hist is None:
                continue
            # Prune expired appearances; sum λ over the live window.
            lam = 0.0
            live: list[list[int]] = []
            for entry in hist:
                sid, count = entry
                if sid <= expired_id:
                    continue
                live.append(entry)
                lam += (self.alpha ** (newest_id - sid)) * count
            if live:
                self._appearances[key] = live
            else:
                del self._appearances[key]
            if lam < self.threshold:
                batch.evicted_keys.append(key)
            else:
                batch.kept += 1
        return batch

    # ------------------------------------------------------------ queries

    @property
    def tracked_keys(self) -> int:
        """Number of keys with live appearance history (memory diagnostic)."""
        return len(self._appearances)

    def window_fill(self) -> int:
        """Closed slices currently inside the window (≤ m)."""
        return len(self._slices)
