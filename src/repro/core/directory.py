"""A CRISP-style directory-mapped cooperative cache (related-work baseline).

Sec. V: "Gadde, Chase, and Rabovich's CRISP proxy utilizes a centralized
directory service to track the exact locations of cached data.  This
simplicity comes at the cost of scalability."

This baseline makes that comparison concrete: placement is
least-loaded-first and a central ``directory`` dict maps every key to its
node.  Two scalability costs follow, both modeled here:

* every lookup pays an extra **directory hop** (an RPC to the directory
  service before the data node can be contacted) — charged by the
  coordinator through :meth:`lookup_overhead_s`;
* directory state grows with the *record* population, not the node
  population — ``metadata_bytes`` exposes the footprint that the
  consistent-hash ring avoids (its state is ``O(buckets)``).

Elasticity is trivial for a directory (new nodes simply start receiving
placements; nothing moves), which is also measurable: compare
:meth:`add_node` with GBA's migration-on-growth.  What a directory cannot
do is *find* data without itself being available and consistent — the
single point the paper's design avoids.
"""

from __future__ import annotations

from repro.cloud.instance import InstanceType
from repro.cloud.network import NetworkModel
from repro.cloud.provider import SimulatedCloud
from repro.core.cachenode import CacheNode, CapacityError
from repro.core.config import CacheConfig
from repro.core.lru import LRUTracker
from repro.core.record import CacheRecord

#: Approximate directory entry footprint: key + node id + dict overhead.
DIRECTORY_ENTRY_BYTES = 64


class DirectoryCache:
    """Cooperative cache with centralized exact-location directory.

    Presents the same surface as the other caches so the coordinator and
    harness can drive it unchanged.

    Parameters
    ----------
    n_nodes:
        Initial fleet; grows via :meth:`add_node` or automatically when
        every node is full (``elastic=True``).
    elastic:
        Allocate a new node when an insert finds the whole fleet full
        (directory placement makes growth migration-free).
    """

    def __init__(
        self,
        *,
        cloud: SimulatedCloud,
        network: NetworkModel,
        config: CacheConfig,
        n_nodes: int = 1,
        elastic: bool = True,
        itype: InstanceType | None = None,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        self.cloud = cloud
        self.network = network
        self.clock = cloud.clock
        self.config = config
        self.elastic = elastic
        self.itype = itype or cloud.default_itype
        self.nodes: list[CacheNode] = []
        self.lru = LRUTracker()  #: global LRU over hkeys
        self.directory: dict[int, CacheNode] = {}  #: key -> owning node
        self.lru_evictions = 0
        for _ in range(n_nodes):
            self.add_node()

    # --------------------------------------------------------------- fleet

    def add_node(self) -> CacheNode:
        """Provision one more cache node (no data moves — the directory
        simply starts placing onto it)."""
        cloud_node = self.cloud.allocate(self.itype, block=True)
        capacity = self.config.node_capacity_bytes or self.itype.usable_bytes
        node = CacheNode(cloud_node=cloud_node, capacity_bytes=capacity,
                         btree_order=self.config.btree_order)
        self.nodes.append(node)
        return node

    # ----------------------------------------------------------- data path

    def lookup_overhead_s(self) -> float:
        """The extra directory-service hop every access pays."""
        return self.network.rpc_time(request_bytes=64, reply_bytes=64)

    def get(self, key: int) -> CacheRecord | None:
        """Directory lookup, then the data node."""
        node = self.directory.get(key)
        if node is None:
            return None
        record = node.search(key)
        if record is not None:
            self.lru.touch(key)
        return record

    def put(self, key: int, value, nbytes: int) -> list:
        """Place on the least-loaded node with room; evict LRU if none.

        Returns an empty list (no split events) for harness symmetry.
        """
        existing = self.directory.get(key)
        if existing is not None:
            existing.delete(key)
            self.lru.discard(key)
            del self.directory[key]

        if nbytes > max(n.capacity_bytes for n in self.nodes):
            raise CapacityError(f"record of {nbytes} B exceeds every node")

        node = min(self.nodes, key=lambda n: (n.used_bytes, n.node_id))
        if not node.fits(nbytes):
            if self.elastic:
                node = self.add_node()
            else:
                while not node.fits(nbytes):
                    victim_key = self.lru.pop_victim()
                    owner = self.directory.pop(victim_key)
                    owner.delete(victim_key)
                    self.lru_evictions += 1
                    node = min(self.nodes,
                               key=lambda n: (n.used_bytes, n.node_id))

        node.insert(CacheRecord(key=key, hkey=key, value=value, nbytes=nbytes))
        self.directory[key] = node
        self.lru.touch(key)
        return []

    def evict_keys(self, keys) -> int:
        """Delete the given keys; returns count removed."""
        removed = 0
        for key in keys:
            node = self.directory.pop(key, None)
            if node is None:
                continue
            node.delete(key)
            self.lru.discard(key)
            removed += 1
        return removed

    # -------------------------------------------------------- stream hooks

    def record_query(self, key: int) -> None:
        """No interest window in this baseline."""

    def end_time_slice(self) -> tuple[None, int, None]:
        """No slice semantics in this baseline."""
        return None, 0, None

    # ------------------------------------------------------------- queries

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    @property
    def node_count(self) -> int:
        """Current fleet size."""
        return len(self.nodes)

    @property
    def used_bytes(self) -> int:
        """Total cached bytes."""
        return sum(n.used_bytes for n in self.nodes)

    @property
    def capacity_bytes(self) -> int:
        """Total capacity."""
        return sum(n.capacity_bytes for n in self.nodes)

    @property
    def record_count(self) -> int:
        """Total cached records (== directory entries)."""
        return len(self.directory)

    @property
    def metadata_bytes(self) -> int:
        """Directory-service state: one entry per cached record.

        The consistent-hash ring's equivalent is ``O(p)`` bucket entries —
        independent of the record population.
        """
        return len(self.directory) * DIRECTORY_ENTRY_BYTES

    def stats(self) -> dict:
        """Flat state snapshot."""
        return {
            "nodes": self.node_count,
            "records": self.record_count,
            "used_bytes": self.used_bytes,
            "capacity_bytes": self.capacity_bytes,
            "metadata_bytes": self.metadata_bytes,
            "lru_evictions": self.lru_evictions,
            "cost_usd": self.cloud.cost_so_far(),
        }

    def check_integrity(self) -> None:
        """Directory and node contents must agree exactly."""
        seen = 0
        for node in self.nodes:
            node.tree.check_invariants()
            node.check_accounting()
            for _, rec in node.tree.items():
                assert self.directory.get(rec.key) is node, (
                    f"record {rec.key} on {node.node_id} but directory says "
                    f"{getattr(self.directory.get(rec.key), 'node_id', None)}"
                )
                seen += 1
        assert seen == len(self.directory), "directory has dangling entries"
