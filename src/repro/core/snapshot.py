"""Cache snapshot/restore — warm starts and experiment checkpoints.

The paper's caches are always cold at experiment start; real deployments
want the opposite: survive a coordinator restart, or seed a new region
from an existing cache.  A snapshot captures the *logical* cache state —
bucket layout, node assignment, and every record — and restore rebuilds
it on freshly provisioned nodes with identical routing.

Format: Python pickles (records hold arbitrary payload objects).  Only
load snapshots you produced — pickle executes code on load.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from pathlib import Path

from repro.cloud.network import NetworkModel
from repro.cloud.provider import SimulatedCloud
from repro.core.config import CacheConfig, ContractionConfig, EvictionConfig
from repro.core.elastic import ElasticCooperativeCache
from repro.core.record import CacheRecord

SNAPSHOT_VERSION = 1


@dataclass
class CacheSnapshot:
    """The logical state of an elastic cache at one instant."""

    version: int
    config: CacheConfig
    eviction: EvictionConfig
    contraction: ContractionConfig
    #: bucket position -> node index (order of ``cache.nodes``)
    bucket_map: dict[int, int]
    #: per node: list of (key, hkey, nbytes, value)
    node_records: list[list[tuple]]

    @property
    def record_count(self) -> int:
        """Total records captured."""
        return sum(len(r) for r in self.node_records)


def snapshot(cache: ElasticCooperativeCache) -> CacheSnapshot:
    """Capture a cache's logical state (structure + records)."""
    node_index = {id(node): i for i, node in enumerate(cache.nodes)}
    bucket_map = {
        pos: node_index[id(cache.ring.node_map[pos])]
        for pos in cache.ring.buckets
    }
    node_records = [
        [(rec.key, rec.hkey, rec.nbytes, rec.value)
         for _, rec in node.tree.items()]
        for node in cache.nodes
    ]
    return CacheSnapshot(
        version=SNAPSHOT_VERSION,
        config=cache.config,
        eviction=cache.eviction_config,
        contraction=cache.contraction_config,
        bucket_map=bucket_map,
        node_records=node_records,
    )


def save_cache(cache: ElasticCooperativeCache, path: str | Path) -> CacheSnapshot:
    """Snapshot ``cache`` and pickle it to ``path``."""
    snap = snapshot(cache)
    Path(path).write_bytes(pickle.dumps(snap, protocol=pickle.HIGHEST_PROTOCOL))
    return snap


def restore_cache(snap: CacheSnapshot, *, cloud: SimulatedCloud,
                  network: NetworkModel) -> ElasticCooperativeCache:
    """Rebuild a cache from a snapshot on fresh instances.

    Provisioning advances the clock (one boot per node, as a real warm
    start would); callers checkpointing experiments typically
    ``clock.reset()`` afterwards.

    Raises
    ------
    ValueError
        On an unsupported snapshot version.
    """
    if snap.version != SNAPSHOT_VERSION:
        raise ValueError(f"unsupported snapshot version {snap.version}")

    # Build an empty shell with one initial node, then reshape it.
    cache = ElasticCooperativeCache(
        cloud=cloud, network=network, config=snap.config,
        eviction=snap.eviction, contraction=snap.contraction,
    )
    n_nodes = len(snap.node_records)
    while len(cache.nodes) < n_nodes:
        cache._provision_node()

    # Replace the constructor's default bucket layout with the snapshot's.
    cache.ring.buckets.clear()
    cache.ring.node_map.clear()
    cache.ring.bucket_bytes.clear()
    cache.ring.bucket_records.clear()
    for pos, node_idx in sorted(snap.bucket_map.items()):
        cache.ring.add_bucket(pos, cache.nodes[node_idx])

    for node, records in zip(cache.nodes, snap.node_records):
        for key, hkey, nbytes, value in records:
            node.insert(CacheRecord(key=key, hkey=hkey, value=value,
                                    nbytes=nbytes))
            cache.ring.record_insert(hkey, nbytes)
    cache.check_integrity()
    return cache


def load_cache(path: str | Path, *, cloud: SimulatedCloud,
               network: NetworkModel) -> ElasticCooperativeCache:
    """Unpickle a snapshot from ``path`` and restore it."""
    snap: CacheSnapshot = pickle.loads(Path(path).read_bytes())
    return restore_cache(snap, cloud=cloud, network=network)
