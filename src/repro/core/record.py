"""The unit of caching: one derived service result."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class CacheRecord:
    """An immutable cached ``(k, v)`` pair with its memory footprint.

    Attributes
    ----------
    key:
        The service-input key ``k`` (a linearized spatiotemporal
        coordinate — see :mod:`repro.sfc`).
    hkey:
        ``h'(k)``, the key's fixed position on the hash line.  Stored so
        lookups, migrations, and evictions never re-hash.
    value:
        The derived result (opaque to the cache; typically a
        :class:`~repro.services.base.ServiceResult`).
    nbytes:
        ``sizeof(k, v)`` — the record's in-memory footprint, charged
        against node capacity ``⌈n⌉``.
    """

    key: int
    hkey: int
    value: Any
    nbytes: int

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise ValueError(f"record footprint must be positive, got {self.nbytes}")
