"""A rule-based auto-scaler baseline — the Sec. I contrast.

"Automatic scaling services exist on most Clouds.  For instance, Amazon
AWS allows users to assign certain rules, e.g., scale up by one node if
the average CPU usage is above 80%.  But while auto-scalers are suitable
for Map-Reduce applications ... in cases where much more distributed
coordination is required, elasticity does not directly translate to
scalability."

This module makes that argument measurable.  :class:`AutoscaledModNCache`
is what a 2010 practitioner got by pointing a threshold auto-scaler at a
mod-N cooperative cache: when mean utilization crosses ``scale_up_at`` the
fleet grows by one, when it falls below ``scale_down_at`` it shrinks by
one — and every resize **rehashes the whole cache** (the hash-disruption
cost the paper's consistent hashing exists to avoid), relocating most
records and paying their transfer time.

The ``bench_ablation_autoscaler`` benchmark races it against GBA on the
phased workload: both end up with similar fleet sizes, but the autoscaler
moves an order of magnitude more data and stalls queries during rehashes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.instance import InstanceType
from repro.cloud.network import NetworkModel
from repro.cloud.provider import SimulatedCloud
from repro.core.config import CacheConfig
from repro.core.static_cache import StaticCooperativeCache


@dataclass(frozen=True)
class ResizeEvent:
    """One auto-scaling action and its disruption cost."""

    step: int
    time: float
    from_nodes: int
    to_nodes: int
    records_moved: int
    bytes_moved: int
    rehash_s: float
    allocation_s: float

    @property
    def overhead_s(self) -> float:
        """Total virtual seconds this resize stalled the cache."""
        return self.rehash_s + self.allocation_s


class AutoscaledModNCache(StaticCooperativeCache):
    """Mod-N cache + CPU-style threshold auto-scaler.

    Memory utilization stands in for the "average CPU usage" rule (cache
    nodes are memory-bound).  Scaling decisions are evaluated once per
    time slice, like CloudWatch's periodic alarms.

    Parameters
    ----------
    scale_up_at / scale_down_at:
        Mean-utilization thresholds (the canonical 80 % rule, and a
        low-water mark for scale-in).
    min_nodes / max_fleet:
        Fleet bounds.
    cooldown_slices:
        Minimum slices between scaling actions (real auto-scalers enforce
        cooldowns to dampen flapping).
    """

    def __init__(
        self,
        *,
        cloud: SimulatedCloud,
        network: NetworkModel,
        config: CacheConfig,
        n_nodes: int = 1,
        scale_up_at: float = 0.80,
        scale_down_at: float = 0.30,
        min_nodes: int = 1,
        max_fleet: int = 20,
        cooldown_slices: int = 3,
        itype: InstanceType | None = None,
    ) -> None:
        super().__init__(cloud=cloud, network=network, config=config,
                         n_nodes=n_nodes, itype=itype)
        if not 0.0 < scale_down_at < scale_up_at <= 1.0:
            raise ValueError("need 0 < scale_down_at < scale_up_at <= 1")
        self.scale_up_at = scale_up_at
        self.scale_down_at = scale_down_at
        self.min_nodes = max(1, min_nodes)
        self.max_fleet = max_fleet
        self.cooldown_slices = max(0, cooldown_slices)
        self.resize_events: list[ResizeEvent] = []
        self._slices_since_action = cooldown_slices  # allow immediate action

    # ----------------------------------------------------------- decisions

    @property
    def utilization(self) -> float:
        """Mean memory utilization across the fleet (the alarm metric)."""
        capacity = self.capacity_bytes
        return self.used_bytes / capacity if capacity else 0.0

    def end_time_slice(self) -> tuple[None, int, None]:
        """Periodic alarm evaluation: maybe scale, then report nothing
        (no eviction batches in this baseline — LRU handles overflow)."""
        self._slices_since_action += 1
        if self._slices_since_action >= self.cooldown_slices:
            self._maybe_scale()
        return None, 0, None

    def _maybe_scale(self) -> None:
        util = self.utilization
        n = self.node_count
        if util >= self.scale_up_at and n < self.max_fleet:
            self._resize_to(n + 1)
        elif util <= self.scale_down_at and n > self.min_nodes:
            self._resize_to(n - 1)

    # --------------------------------------------------------------- resize

    def _resize_to(self, target: int) -> None:
        """Grow/shrink by one node, paying the full rehash."""
        t0 = self.clock.now
        before = self.node_count
        records_before = self.record_count
        mean_record = (self.used_bytes // records_before) if records_before else 0

        # resize() blocks on any new instance boot (clock advances inside).
        moved = self.resize(target)
        alloc_s = self.clock.now - t0

        # Every relocated record crosses the network.
        moved_bytes = moved * mean_record
        rehash_s = self.network.transfer_time(moved_bytes, moved)
        self.clock.advance(rehash_s)

        self.resize_events.append(ResizeEvent(
            step=self.clock.step,
            time=t0,
            from_nodes=before,
            to_nodes=target,
            records_moved=moved,
            bytes_moved=moved_bytes,
            rehash_s=rehash_s,
            allocation_s=alloc_s,
        ))
        self._slices_since_action = 0

    # --------------------------------------------------------------- stats

    def stats(self) -> dict:
        """Flat snapshot, including disruption totals."""
        base = super().stats()
        base.update({
            "resizes": len(self.resize_events),
            "rehash_records_moved": sum(e.records_moved for e in self.resize_events),
            "rehash_overhead_s": sum(e.overhead_s for e in self.resize_events),
        })
        return base
