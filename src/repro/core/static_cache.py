"""The static-N baseline: fixed nodes, static hashing, per-node LRU.

"We run our cache system over static, fixed-node configurations (static-2,
static-4, static-8), comparable to current cluster/grid environments, where
the amounts of nodes one can allocate is typically fixed.  The fixed-node
settings subscribe to the simple LRU eviction policy." (Sec. IV-B)

Placement is the paper's static hash ``h(k) = k mod n`` (Sec. II-A's
motivating example).  :meth:`resize` implements exactly the **hash
disruption** that example warns about — changing ``n`` rehashes everything —
and is used by the hashing ablation benchmark to quantify how many records
relocate versus consistent hashing.
"""

from __future__ import annotations

from repro.cloud.instance import InstanceType
from repro.cloud.network import NetworkModel
from repro.cloud.provider import SimulatedCloud
from repro.core.cachenode import CacheNode, CapacityError
from repro.core.config import CacheConfig
from repro.core.lru import LRUTracker
from repro.core.record import CacheRecord
from repro.sim.rng import stable_key_hash


class StaticCooperativeCache:
    """A fixed fleet of cache nodes with mod-N placement and LRU eviction.

    Presents the same ``get``/``put``/``record_query``/``end_time_slice``
    surface as :class:`~repro.core.elastic.ElasticCooperativeCache` so the
    coordinator and harness are baseline-agnostic.

    Parameters
    ----------
    n_nodes:
        The fleet size (the paper's static-2 / static-4 / static-8).
    hash_mode:
        ``"identity"`` — the paper's ``k mod n``; ``"splitmix"`` — mix the
        key first (useful when key distributions are skewed).
    """

    def __init__(
        self,
        *,
        cloud: SimulatedCloud,
        network: NetworkModel,
        config: CacheConfig,
        n_nodes: int,
        itype: InstanceType | None = None,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        self.cloud = cloud
        self.network = network
        self.clock = cloud.clock
        self.config = config
        self.itype = itype or cloud.default_itype
        self.nodes: list[CacheNode] = []
        self.lru: list[LRUTracker] = []
        self.lru_evictions = 0
        for _ in range(n_nodes):
            cloud_node = cloud.allocate(self.itype, block=True)
            capacity = config.node_capacity_bytes or self.itype.usable_bytes
            self.nodes.append(
                CacheNode(cloud_node=cloud_node, capacity_bytes=capacity,
                          btree_order=config.btree_order)
            )
            self.lru.append(LRUTracker())

    # ---------------------------------------------------------- placement

    def _hash(self, key: int) -> int:
        if self.config.hash_mode == "identity":
            return key
        return stable_key_hash(key)

    def _node_index(self, key: int) -> int:
        """Static hashing: ``h(k) = k mod n``."""
        return self._hash(key) % len(self.nodes)

    # ----------------------------------------------------------- data path

    def get(self, key: int) -> CacheRecord | None:
        """Lookup; touches LRU recency on hit."""
        idx = self._node_index(key)
        hkey = self._hash(key)
        record = self.nodes[idx].search(hkey)
        if record is not None:
            self.lru[idx].touch(hkey)
        return record

    def put(self, key: int, value, nbytes: int) -> list:
        """Insert, evicting LRU records on the target node until it fits.

        Returns an empty list (no split events) for harness symmetry.
        """
        idx = self._node_index(key)
        node = self.nodes[idx]
        lru = self.lru[idx]
        hkey = self._hash(key)

        existing = node.search(hkey)
        if existing is not None:
            node.delete(hkey)
            lru.discard(hkey)

        if nbytes > node.capacity_bytes:
            raise CapacityError(
                f"record of {nbytes} B exceeds node capacity "
                f"{node.capacity_bytes} B; static caches cannot split"
            )
        while not node.fits(nbytes):
            victim = lru.pop_victim()
            node.delete(victim)
            self.lru_evictions += 1

        node.insert(CacheRecord(key=key, hkey=hkey, value=value, nbytes=nbytes))
        lru.touch(hkey)
        return []

    # -------------------------------------------------------- stream hooks

    def record_query(self, key: int) -> None:
        """No global interest window in the static baseline."""

    def end_time_slice(self) -> tuple[None, int, None]:
        """No slice semantics in the static baseline."""
        return None, 0, None

    # ------------------------------------------------------------- resize

    def resize(self, n_nodes: int) -> int:
        """Change the fleet size, rehashing every record (hash disruption).

        Grows or shrinks the fleet to ``n_nodes`` and relocates records
        whose ``k mod n`` changed.  Returns the number of relocated
        records — the quantity consistent hashing exists to minimize.
        Records that no longer fit on their new node are LRU-evicted there.
        """
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        old_n = len(self.nodes)
        if n_nodes == old_n:
            return 0

        while len(self.nodes) < n_nodes:
            cloud_node = self.cloud.allocate(self.itype, block=True)
            capacity = self.config.node_capacity_bytes or self.itype.usable_bytes
            self.nodes.append(
                CacheNode(cloud_node=cloud_node, capacity_bytes=capacity,
                          btree_order=self.config.btree_order)
            )
            self.lru.append(LRUTracker())

        def placement(key: int) -> int:
            if self.config.hash_mode == "identity":
                return key % n_nodes
            return stable_key_hash(key) % n_nodes

        # Two-phase rehash: extract every relocating record first, then
        # place.  (One-phase placement could LRU-evict a record that is
        # itself queued for relocation off the same node, corrupting the
        # move list.)
        moved = 0
        relocations: list[CacheRecord] = []
        for idx, node in enumerate(self.nodes[:old_n]):
            for _, rec in list(node.tree.items()):
                if placement(rec.key) != idx:
                    node.delete(rec.hkey)
                    self.lru[idx].discard(rec.hkey)
                    relocations.append(rec)

        for rec in relocations:
            new_idx = placement(rec.key)
            dest, dest_lru = self.nodes[new_idx], self.lru[new_idx]
            while not dest.fits(rec.nbytes):
                dest.delete(dest_lru.pop_victim())
                self.lru_evictions += 1
            dest.insert(rec)
            dest_lru.touch(rec.hkey)
            moved += 1

        while len(self.nodes) > n_nodes:
            node = self.nodes.pop()
            self.lru.pop()
            self.cloud.terminate(node.cloud_node)
        return moved

    # ------------------------------------------------------------ queries

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    @property
    def node_count(self) -> int:
        """The fixed fleet size."""
        return len(self.nodes)

    @property
    def used_bytes(self) -> int:
        """Total bytes cached across the fleet."""
        return sum(n.used_bytes for n in self.nodes)

    @property
    def capacity_bytes(self) -> int:
        """Total capacity across the fleet."""
        return sum(n.capacity_bytes for n in self.nodes)

    @property
    def record_count(self) -> int:
        """Total cached records."""
        return sum(len(n) for n in self.nodes)

    def stats(self) -> dict:
        """Flat state snapshot for reports and tests."""
        return {
            "nodes": self.node_count,
            "records": self.record_count,
            "used_bytes": self.used_bytes,
            "capacity_bytes": self.capacity_bytes,
            "lru_evictions": self.lru_evictions,
            "cost_usd": self.cloud.cost_so_far(),
        }
