"""One cooperative cache node: capacity accounting over a B+-tree index.

The tree is keyed by **hash-line position** ``h'(k)`` (see
:mod:`repro.core.ring`): with the paper's order-preserving ``h'``, tree
order equals key order equals hash-line order, so a bucket's records occupy
one contiguous leaf range — exactly what Algorithm 2's sweep walks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.btree.bplustree import BPlusTree
from repro.btree.sweep import sweep_range
from repro.cloud.instance import CloudNode
from repro.core.record import CacheRecord


class CapacityError(RuntimeError):
    """Raised when a record cannot fit anywhere (e.g. larger than ``⌈n⌉``)."""


@dataclass
class CacheNode:
    """A cloud node's slice of the cooperative cache.

    Attributes
    ----------
    cloud_node:
        The underlying provisioned instance.
    capacity_bytes:
        ``⌈n⌉`` — total record capacity on this node.
    used_bytes:
        ``||n||`` — bytes currently occupied by cached records.
    """

    cloud_node: CloudNode
    capacity_bytes: int
    btree_order: int = 64
    used_bytes: int = 0
    tree: BPlusTree = field(init=False)

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.tree = BPlusTree(order=self.btree_order)

    # ------------------------------------------------------------- queries

    @property
    def node_id(self) -> str:
        """The provider id of the backing instance."""
        return self.cloud_node.node_id

    def __len__(self) -> int:
        return len(self.tree)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheNode({self.node_id}, {len(self.tree)} recs, "
            f"{self.used_bytes}/{self.capacity_bytes} B)"
        )

    @property
    def free_bytes(self) -> int:
        """``⌈n⌉ - ||n||``."""
        return self.capacity_bytes - self.used_bytes

    def fits(self, nbytes: int) -> bool:
        """Alg. 1 line 5: would ``nbytes`` more stay within capacity?"""
        return self.used_bytes + nbytes <= self.capacity_bytes

    def search(self, hkey: int) -> CacheRecord | None:
        """Return the record stored at hash position ``hkey``, if any."""
        return self.tree.search(hkey)

    def records_in(self, h_lo: int, h_hi: int) -> Iterator[CacheRecord]:
        """Yield records with ``h_lo <= hkey <= h_hi`` in hash order."""
        for _, record in sweep_range(self.tree, h_lo, h_hi):
            yield record

    def count_in(self, h_lo: int, h_hi: int) -> int:
        """Number of records in the inclusive hash range."""
        return self.tree.count_range(h_lo, h_hi)

    # ------------------------------------------------------------ mutation

    def insert(self, record: CacheRecord) -> None:
        """Store a record.  The caller must have verified :meth:`fits`.

        Overwrites of an existing ``hkey`` release the old footprint first
        (derived results are deterministic, so overwrites are idempotent
        refreshes, but sizes may differ across service versions).
        """
        existing = self.tree.search(record.hkey)
        if existing is not None:
            self.used_bytes -= existing.nbytes
        if not self.fits(record.nbytes):
            self.used_bytes += existing.nbytes if existing is not None else 0
            raise CapacityError(
                f"{self.node_id}: {record.nbytes} B record overflows "
                f"{self.free_bytes} B free"
            )
        self.tree.insert(record.hkey, record)
        self.used_bytes += record.nbytes

    def delete(self, hkey: int) -> CacheRecord:
        """Remove and return the record at ``hkey``.

        Raises
        ------
        KeyError
            If no record lives at ``hkey``.
        """
        record: CacheRecord = self.tree.delete(hkey)
        self.used_bytes -= record.nbytes
        return record

    def extract_range(self, h_lo: int, h_hi: int) -> list[CacheRecord]:
        """Sweep and *remove* all records in the inclusive hash range.

        This is the node-local half of Algorithm 2: collect via the leaf
        chain, then delete.  Returns the extracted records in hash order.
        """
        victims = [rec for _, rec in sweep_range(self.tree, h_lo, h_hi)]
        for rec in victims:
            self.tree.delete(rec.hkey)
            self.used_bytes -= rec.nbytes
        return victims

    def check_accounting(self) -> None:
        """Assert ``used_bytes`` equals the sum of stored record sizes."""
        total = sum(rec.nbytes for _, rec in self.tree.items())
        assert total == self.used_bytes, (
            f"{self.node_id}: used_bytes={self.used_bytes} but records sum to {total}"
        )
        assert self.used_bytes <= self.capacity_bytes, f"{self.node_id} over capacity"
