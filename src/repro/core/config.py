"""Configuration dataclasses for the cache system.

Identifiers follow Table I of the paper: ``r`` is the hash-line range, ``m``
the sliding-window length, ``α`` the decay, ``T_λ`` the eviction threshold,
``ε`` the contraction period.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CacheConfig:
    """Structural parameters of the cooperative cache.

    Parameters
    ----------
    ring_range:
        The paper's ``r``: size of the hash line ``[0, r)``.  With
        ``hash_mode="identity"`` this must be at least the keyspace size.
    hash_mode:
        ``"identity"`` — the paper's ``h'(k) = k mod r`` with ``r`` at
        least the keyspace, i.e. order-preserving: spatially adjacent
        linearized keys stay adjacent on the hash line (and in B+-tree
        leaves), which is what makes the median-split of Alg. 1 meaningful.
        ``"splitmix"`` — a bijective 64-bit mix for uniform load spreading
        (an ablation; trades B²-tree locality for balance).
    node_capacity_bytes:
        Override for ``⌈n⌉``.  ``None`` uses the instance type's usable
        memory; experiments set small capacities so the scaled keyspace
        exercises overflow exactly like the paper's 1.7 GB nodes did.
    btree_order:
        Fan-out of each node's B+-tree index.
    initial_nodes:
        Cooperative cache size at cold start (the paper starts at 1).
    greedy:
        If true (GBA), overflow migrations prefer existing least-loaded
        nodes and allocate only as a last resort; if false, every overflow
        allocates a fresh node (ablation C in DESIGN.md).
    max_insert_retries:
        Safety bound on the Alg. 1 recursion (insert → split → reinsert).
    """

    ring_range: int = 1 << 16
    hash_mode: str = "identity"
    node_capacity_bytes: int | None = None
    btree_order: int = 64
    initial_nodes: int = 1
    greedy: bool = True
    max_insert_retries: int = 8

    def __post_init__(self) -> None:
        if self.hash_mode not in ("identity", "splitmix"):
            raise ValueError(f"unknown hash_mode {self.hash_mode!r}")
        if self.ring_range < 2:
            raise ValueError("ring_range must be >= 2")
        if self.initial_nodes < 1:
            raise ValueError("initial_nodes must be >= 1")


@dataclass(frozen=True)
class EvictionConfig:
    """Sliding-window decay eviction (Sec. III-B).

    Parameters
    ----------
    window_slices:
        ``m``, the number of time slices in the window.  ``None`` disables
        eviction entirely — the paper's "infinite window" used for Fig. 3.
    alpha:
        The decay ``α ∈ (0, 1)``; higher keeps more keys.
    threshold:
        ``T_λ``; keys in the expired slice with ``λ(k) < T_λ`` are evicted.
        ``None`` uses the paper's baseline ``α**(m-1)``, which never evicts
        a key queried at least once within the window.  Fig. 7 holds this
        at the α=0.99 baseline while varying α.
    """

    window_slices: int | None = None
    alpha: float = 0.99
    threshold: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        if self.window_slices is not None and self.window_slices < 1:
            raise ValueError("window_slices must be >= 1 (or None to disable)")

    @property
    def enabled(self) -> bool:
        """Whether the window is finite (eviction active)."""
        return self.window_slices is not None

    @property
    def effective_threshold(self) -> float:
        """``T_λ`` with the baseline default applied."""
        if self.threshold is not None:
            return self.threshold
        m = self.window_slices or 1
        return self.alpha ** (m - 1)


@dataclass(frozen=True)
class ContractionConfig:
    """ε-periodic node-merge heuristic (Sec. III-B).

    Parameters
    ----------
    epsilon_slices:
        ``ε``: contraction is attempted after every ε slice expirations.
    merge_threshold:
        The churn-avoidance bound: merge only if the coalesced data fits
        within this fraction of the destination's capacity.  The paper
        sets 65 %.
    min_nodes:
        Never contract below this many nodes.
    enabled:
        Master switch (off for the static baselines and Fig. 3).
    """

    epsilon_slices: int = 5
    merge_threshold: float = 0.65
    min_nodes: int = 1
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.epsilon_slices < 1:
            raise ValueError("epsilon_slices must be >= 1")
        if not 0.0 < self.merge_threshold <= 1.0:
            raise ValueError("merge_threshold must be in (0, 1]")
        if self.min_nodes < 1:
            raise ValueError("min_nodes must be >= 1")


@dataclass(frozen=True)
class ExperimentTimings:
    """Virtual-time costs of the query path.

    Defaults reproduce Sec. IV-A: "the baseline execution time of this
    service ... typically takes approximately 23 seconds", plus a hit path
    that includes coordinator dispatch, B+-tree lookup, and result
    transfer back to the caller (sub-second but not free — this is what
    bounds the paper's observed ~15× rather than the 10⁴× a
    zero-cost hit would give).
    """

    service_time_s: float = 23.0
    hit_overhead_s: float = 0.5
    miss_overhead_s: float = 0.05
    result_bytes: int = 1024  #: "the derived shoreline result is < 1kb"
    record_overhead_bytes: int = 64  #: index + bookkeeping footprint per record
