"""The elastic cooperative cache — public facade.

This is the "Cloud service, from the application developer's perspective,
for indexing, caching, and reusing precomputed results" (Sec. II): a
high-level ``get``/``put`` interface hiding victimization, replacement,
resource management, and data movement.

Wiring: a :class:`~repro.core.ring.ConsistentHashRing` routes keys, each
node indexes its slice in a B+-tree, :class:`~repro.core.gba.GreedyBucketAllocator`
handles overflow splits, :class:`~repro.core.sliding_window.SlidingWindowEvictor`
scores eviction candidates at slice expiry, and
:class:`~repro.core.contraction.Contractor` merges superfluous nodes to cut
cost.
"""

from __future__ import annotations

from typing import Callable

from repro.cloud.instance import InstanceType
from repro.cloud.network import NetworkModel
from repro.cloud.provider import SimulatedCloud
from repro.core.cachenode import CacheNode
from repro.core.config import CacheConfig, ContractionConfig, EvictionConfig
from repro.core.contraction import Contractor, MergeEvent
from repro.core.gba import GreedyBucketAllocator, SplitEvent
from repro.core.record import CacheRecord
from repro.core.ring import ConsistentHashRing
from repro.core.sliding_window import EvictionBatch, SlidingWindowEvictor


class ElasticCooperativeCache:
    """The paper's cache system, end to end.

    Parameters
    ----------
    cloud:
        The (simulated) IaaS provider; node allocation and billing.
    network:
        The ``T_net`` model shared by migrations and lookups.
    config:
        Structural parameters (ring, capacities, greediness).
    eviction:
        Sliding-window parameters; the default (``window_slices=None``)
        is the paper's infinite window — the cache only ever grows.
    contraction:
        Node-merge parameters (ignored while the window is infinite,
        since no slice ever expires).
    node_source:
        Optional override for node provisioning — the warm-pool extension
        injects its pre-booted instances here.  Must return a RUNNING
        :class:`~repro.cloud.instance.CloudNode` and advance the clock by
        whatever allocation latency applies.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.sim import SimClock
    >>> from repro.cloud import SimulatedCloud, NetworkModel
    >>> clock = SimClock()
    >>> cloud = SimulatedCloud(clock=clock, rng=np.random.default_rng(7))
    >>> cache = ElasticCooperativeCache(
    ...     cloud=cloud, network=NetworkModel(),
    ...     config=CacheConfig(ring_range=1024, node_capacity_bytes=10_000))
    >>> cache.put(5, "result", nbytes=100)
    []
    >>> cache.get(5).value
    'result'
    """

    def __init__(
        self,
        *,
        cloud: SimulatedCloud,
        network: NetworkModel,
        config: CacheConfig,
        eviction: EvictionConfig = EvictionConfig(),
        contraction: ContractionConfig = ContractionConfig(),
        itype: InstanceType | None = None,
        node_source: Callable[[], object] | None = None,
    ) -> None:
        self.cloud = cloud
        self.network = network
        self.clock = cloud.clock
        self.config = config
        self.eviction_config = eviction
        self.contraction_config = contraction
        self.itype = itype or cloud.default_itype
        self._node_source = node_source

        self.ring = ConsistentHashRing(config.ring_range, config.hash_mode)
        self.nodes: list[CacheNode] = []

        # Cold start: provision the initial node(s) and lay down bucket(s),
        # always including the sentinel at r-1 (see ring module docs).
        r = self.ring.ring_range  # 2**64 in splitmix mode
        for i in range(config.initial_nodes):
            node = self._provision_node()
            pos = ((i + 1) * r) // config.initial_nodes - 1
            self.ring.add_bucket(pos, node)

        self.gba = GreedyBucketAllocator(
            ring=self.ring,
            clock=self.clock,
            network=network,
            config=config,
            allocate_node=self._provision_node,
            live_nodes=lambda: self.nodes,
        )
        self.evictor: SlidingWindowEvictor | None = (
            SlidingWindowEvictor(eviction) if eviction.enabled else None
        )
        self.contractor = Contractor(
            ring=self.ring,
            clock=self.clock,
            network=network,
            config=contraction,
            live_nodes=lambda: self.nodes,
            release_node=self._release_node,
        )

    # -------------------------------------------------------- provisioning

    def _node_capacity(self) -> int:
        if self.config.node_capacity_bytes is not None:
            return self.config.node_capacity_bytes
        return self.itype.usable_bytes

    def _provision_node(self) -> CacheNode:
        """Allocate a cloud instance and register it as a cache node."""
        if self._node_source is not None:
            cloud_node = self._node_source()
        else:
            cloud_node = self.cloud.allocate(self.itype, block=True)
        node = CacheNode(
            cloud_node=cloud_node,
            capacity_bytes=self._node_capacity(),
            btree_order=self.config.btree_order,
        )
        self.nodes.append(node)
        return node

    def _release_node(self, node: CacheNode) -> None:
        """Unregister a drained node and terminate its instance."""
        if node.used_bytes or len(node.tree):
            raise RuntimeError(f"refusing to release non-empty {node.node_id}")
        self.nodes.remove(node)
        self.cloud.terminate(node.cloud_node)

    # ----------------------------------------------------------- data path

    def get(self, key: int) -> CacheRecord | None:
        """Cache search: B+-tree lookup on the node referenced by ``h(k)``."""
        hkey = self.ring.hash_key(key)
        node: CacheNode = self.ring.node_for_hkey(hkey)
        return node.search(hkey)

    def put(self, key: int, value, nbytes: int) -> list[SplitEvent]:
        """GBA-insert a derived result; returns any splits it triggered."""
        record = CacheRecord(
            key=key, hkey=self.ring.hash_key(key), value=value, nbytes=nbytes
        )
        return self.gba.insert(record)

    def evict_keys(self, keys) -> int:
        """Delete the given keys wherever they are cached; returns count
        actually removed (keys already gone are skipped silently)."""
        removed = 0
        for key in keys:
            hkey = self.ring.hash_key(key)
            node: CacheNode = self.ring.node_for_hkey(hkey)
            record = node.search(hkey)
            if record is None:
                continue
            node.delete(hkey)
            self.ring.record_delete(hkey, record.nbytes)
            removed += 1
        return removed

    # ------------------------------------------------------- stream hooks

    def record_query(self, key: int) -> None:
        """Feed the sliding window (every query, hit or miss)."""
        if self.evictor is not None:
            self.evictor.record(key)

    def end_time_slice(self) -> tuple[EvictionBatch | None, int, MergeEvent | None]:
        """Close a time slice: run eviction scoring and maybe contraction.

        Returns ``(eviction_batch, evicted_count, merge_event)`` — all
        ``None``/0 when the window is infinite.
        """
        if self.evictor is None:
            return None, 0, None
        batch = self.evictor.end_slice()
        removed = self.evict_keys(batch.evicted_keys) if batch.evicted_keys else 0
        merge: MergeEvent | None = None
        if batch.slice_id >= 0:  # a slice actually expired
            merge = self.contractor.on_slice_expired()
        return batch, removed, merge

    # ------------------------------------------------------------ queries

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    @property
    def node_count(self) -> int:
        """Currently allocated cooperative nodes, ``|N|``."""
        return len(self.nodes)

    @property
    def used_bytes(self) -> int:
        """``Σ ||n||`` across the cooperative cache."""
        return sum(n.used_bytes for n in self.nodes)

    @property
    def capacity_bytes(self) -> int:
        """``Σ ⌈n⌉`` across the cooperative cache."""
        return sum(n.capacity_bytes for n in self.nodes)

    @property
    def record_count(self) -> int:
        """Total cached records."""
        return sum(len(n) for n in self.nodes)

    def stats(self) -> dict:
        """Flat state snapshot for reports and tests."""
        return {
            "nodes": self.node_count,
            "records": self.record_count,
            "used_bytes": self.used_bytes,
            "capacity_bytes": self.capacity_bytes,
            "buckets": len(self.ring.buckets),
            "splits": len(self.gba.split_events),
            "merges": len(self.contractor.merge_events),
            "cost_usd": self.cloud.cost_so_far(),
        }

    def check_integrity(self) -> None:
        """Deep structural check (tests): trees, accounting, routing."""
        for node in self.nodes:
            node.tree.check_invariants()
            node.check_accounting()
        self.ring.check_accounting(self.nodes)
        # Every cached record must be routed back to the node holding it.
        for node in self.nodes:
            for _, rec in node.tree.items():
                owner = self.ring.node_for_hkey(rec.hkey)
                assert owner is node, (
                    f"record {rec.key} stored on {node.node_id} but ring "
                    f"routes it to {owner.node_id}"
                )
