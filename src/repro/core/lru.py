"""LRU recency tracking for the static baselines.

"The fixed-node settings subscribe to the simple LRU eviction policy"
(Sec. IV-B) — the same policy memcached uses, which Sec. V contrasts with
the elastic design.  One tracker per static cache node.
"""

from __future__ import annotations

from collections import OrderedDict


class LRUTracker:
    """Recency order over hash keys, O(1) touch/evict.

    Examples
    --------
    >>> lru = LRUTracker()
    >>> lru.touch(1); lru.touch(2); lru.touch(1)
    >>> lru.victim()
    2
    """

    def __init__(self) -> None:
        self._order: OrderedDict[int, None] = OrderedDict()

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, hkey: int) -> bool:
        return hkey in self._order

    def touch(self, hkey: int) -> None:
        """Mark ``hkey`` as most recently used (inserting if new)."""
        if hkey in self._order:
            self._order.move_to_end(hkey)
        else:
            self._order[hkey] = None

    def victim(self) -> int:
        """The least recently used key (not removed).

        Raises
        ------
        KeyError
            If the tracker is empty.
        """
        if not self._order:
            raise KeyError("LRU tracker is empty")
        return next(iter(self._order))

    def pop_victim(self) -> int:
        """Remove and return the least recently used key."""
        hkey, _ = self._order.popitem(last=False)
        return hkey

    def discard(self, hkey: int) -> None:
        """Forget ``hkey`` if tracked (used when records are deleted)."""
        self._order.pop(hkey, None)
