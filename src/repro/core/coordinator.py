"""The query front-end.

"The queries are first sent to a coordinating compute node, and the
underlying cooperating cache is then searched on the input key to find a
replica of the precomputed results.  Upon a hit, the results are
transmitted directly back to the caller, whereas a miss would prompt the
coordinator to invoke the shoreline extraction service." (Sec. IV-A)

The coordinator is where virtual time is charged to queries: the hit path
pays dispatch + lookup + result transfer; the miss path pays the service
execution plus whatever GBA's insert triggers (splits, allocations) — so
overflow overhead lands on the query that caused it, which is how Fig. 4's
spikes become visible in per-step latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.cloud.network import NetworkModel
from repro.core.config import ExperimentTimings
from repro.core.metrics import MetricsRecorder
from repro.core.record import CacheRecord
from repro.sim.clock import SimClock


class CacheProtocol(Protocol):
    """What the coordinator needs from a cache (elastic or static)."""

    def get(self, key: int) -> CacheRecord | None: ...
    def put(self, key: int, value, nbytes: int) -> list: ...
    def record_query(self, key: int) -> None: ...
    def end_time_slice(self) -> tuple: ...
    @property
    def node_count(self) -> int: ...
    @property
    def used_bytes(self) -> int: ...
    @property
    def capacity_bytes(self) -> int: ...


class ServiceProtocol(Protocol):
    """What the coordinator needs from a service."""

    def execute(self, key: int): ...


@dataclass(frozen=True)
class QueryOutcome:
    """One completed query, as seen by the caller."""

    key: int
    hit: bool
    latency_s: float
    value: object


class Coordinator:
    """Routes queries through the cache, invoking the service on misses.

    Parameters
    ----------
    cache:
        Elastic or static cooperative cache.
    service:
        The derived-data service (must advance the clock when executing;
        see :class:`~repro.services.base.Service`).
    clock, network, timings:
        Virtual-time machinery and the path-cost constants.
    metrics:
        Optional recorder; one is created if not given.
    """

    def __init__(
        self,
        *,
        cache: CacheProtocol,
        service: ServiceProtocol,
        clock: SimClock,
        network: NetworkModel,
        timings: ExperimentTimings = ExperimentTimings(),
        metrics: MetricsRecorder | None = None,
    ) -> None:
        self.cache = cache
        self.service = service
        self.clock = clock
        self.network = network
        self.timings = timings
        self.metrics = metrics or MetricsRecorder()

    def query(self, key: int) -> QueryOutcome:
        """Serve one request; advances the clock by its full latency."""
        t0 = self.clock.now
        self.cache.record_query(key)

        record = self.cache.get(key)
        if record is not None:
            # Hit: coordinator dispatch + node RPC + result transfer back.
            self.clock.advance(
                self.timings.hit_overhead_s
                + self.network.rpc_time(reply_bytes=record.nbytes)
            )
            outcome = QueryOutcome(key=key, hit=True,
                                   latency_s=self.clock.now - t0,
                                   value=record.value)
        else:
            # Miss: failed lookup, then the actual service execution, then
            # caching the derived result (which may split / allocate).
            self.clock.advance(self.timings.miss_overhead_s)
            result = self.service.execute(key)
            nbytes = getattr(result, "nbytes", self.timings.result_bytes)
            splits = self.cache.put(
                key, result, nbytes + self.timings.record_overhead_bytes
            )
            for event in splits:
                self.metrics.record_split(event.allocated)
            outcome = QueryOutcome(key=key, hit=False,
                                   latency_s=self.clock.now - t0,
                                   value=result)

        self.metrics.record_query(hit=outcome.hit, latency_s=outcome.latency_s)
        return outcome

    def end_step(self, *, cost_usd: float | None = None) -> None:
        """Close one workload time step: slice expiry, metrics snapshot."""
        batch, removed, merge = self.cache.end_time_slice()
        if batch is not None:
            self.metrics.record_eviction(removed, batch.candidates)
        if merge is not None:
            self.metrics.record_merge()
        self.clock.tick_step()
        self.metrics.end_step(
            step=self.clock.step,
            node_count=self.cache.node_count,
            used_bytes=self.cache.used_bytes,
            capacity_bytes=self.cache.capacity_bytes,
            sim_time_s=self.clock.now,
            cost_usd=cost_usd if cost_usd is not None else 0.0,
        )
