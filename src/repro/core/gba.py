"""Greedy Bucket Allocation — Algorithms 1 and 2 of the paper.

``GBA-insert(k, v)``: hash to the responsible node; insert directly if it
fits; otherwise **split the fullest bucket referencing that node** at its
median key and sweep-migrate the lower half to the least-loaded cooperating
node — allocating a brand-new cloud node *only as a last resort* ("node
allocation is a last-resort option to save cost").  The insert then retries
under the modified structure (the paper's tail recursion, a bounded loop
here).

``sweep-migrate(k_start, k_end)``: pick ``argmin ||n||`` as destination (or
``nodeAlloc()`` if the stolen keys would overflow it), then walk the
B+-tree's linked leaves from ``k_start`` to ``k_end`` transferring every
record.

Timing faithfulness: migrations advance the virtual clock by
``T_net``-proportional transfer time, and allocations by the provider's
boot latency — the two components of Fig. 4's node-splitting overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.cloud.network import NetworkModel
from repro.core.cachenode import CacheNode, CapacityError
from repro.core.config import CacheConfig
from repro.core.record import CacheRecord
from repro.core.ring import ConsistentHashRing
from repro.sim.clock import SimClock


@dataclass(frozen=True)
class SplitEvent:
    """One overflow-triggered split (the unit of Fig. 4).

    ``allocation_s`` is zero when the greedy path reused an existing node;
    otherwise it is the synchronous boot latency paid inline.
    """

    step: int
    time: float
    src_id: str
    dest_id: str
    bucket: int
    new_bucket: int | None  #: None when the whole bucket was reassigned
    records_moved: int
    bytes_moved: int
    migration_s: float
    allocation_s: float

    @property
    def allocated(self) -> bool:
        """Whether this split had to provision a new cloud node."""
        return self.allocation_s > 0.0

    @property
    def overhead_s(self) -> float:
        """Total split overhead: allocation + data movement (Fig. 4's y-axis)."""
        return self.allocation_s + self.migration_s


class GreedyBucketAllocator:
    """Executes GBA-insert against a ring + node population.

    Parameters
    ----------
    ring:
        The shared :class:`~repro.core.ring.ConsistentHashRing`.
    clock, network:
        Virtual time and the ``T_net`` model.
    config:
        Structural knobs (greediness, retry bound).
    allocate_node:
        Callback provisioning a fresh :class:`CacheNode` (blocking; the
        clock advances by the boot latency inside).  Supplied by
        :class:`~repro.core.elastic.ElasticCooperativeCache`, or by the
        warm-pool extension to make allocation near-instant.
    live_nodes:
        Callback returning the current cooperative node population ``N``.
    """

    def __init__(
        self,
        *,
        ring: ConsistentHashRing,
        clock: SimClock,
        network: NetworkModel,
        config: CacheConfig,
        allocate_node: Callable[[], CacheNode],
        live_nodes: Callable[[], list[CacheNode]],
    ) -> None:
        self.ring = ring
        self.clock = clock
        self.network = network
        self.config = config
        self.allocate_node = allocate_node
        self.live_nodes = live_nodes
        self.split_events: list[SplitEvent] = []
        #: optional observer invoked with each :class:`SplitEvent` right
        #: after it lands — replication layers hook this to re-place
        #: buddies when a split changes ring ownership
        self.on_split: Callable[[SplitEvent], None] | None = None

    # ------------------------------------------------------------- insert

    def insert(self, record: CacheRecord) -> list[SplitEvent]:
        """Algorithm 1.  Returns the splits this insert triggered (if any)."""
        events: list[SplitEvent] = []
        for _ in range(self.config.max_insert_retries):
            node: CacheNode = self.ring.node_for_hkey(record.hkey)

            # Refresh path: an existing record at this hkey is replaced.
            existing = node.search(record.hkey)
            if existing is not None:
                node.delete(record.hkey)
                self.ring.record_delete(record.hkey, existing.nbytes)

            if node.fits(record.nbytes):
                node.insert(record)
                self.ring.record_insert(record.hkey, record.nbytes)
                return events

            # Line 7: n overflows — split and retry under the new structure.
            events.append(self._split(node, pending=record))
        raise CapacityError(
            f"record of {record.nbytes} B failed to place after "
            f"{self.config.max_insert_retries} splits"
        )

    # -------------------------------------------------------------- split

    def _split(self, node: CacheNode, pending: CacheRecord | None = None) -> SplitEvent:
        """Split ``node``'s fullest bucket; migrate the lower half away.

        ``pending`` is the record whose insert triggered the overflow (if
        any): when the migrated interval will own its hash position, the
        destination must have room for it *too*, or the retry just moves
        the full bucket somewhere equally full (a ping-pong hypothesis
        found with single-record buckets on 75 %-full nodes).
        """
        b_max = self.ring.fullest_bucket_of(node)
        segments = self.ring.interval_segments(b_max)

        total = sum(node.count_in(lo, hi) for lo, hi in segments)
        if total == 0:
            raise CapacityError(
                f"{node.node_id} overflows with an empty fullest bucket: "
                "record larger than node capacity"
            )

        # k^μ: the median of the bucket's records in hash order; we move
        # [min(b_max), k^μ] — "approximately half the keys ... from the
        # lowest key to the median".
        move_count = (total + 1) // 2
        split_hkey = self._kth_hkey_in(node, segments, move_count - 1)

        # Phase 1 (prepare): snapshot the victim set *without* mutating —
        # this is the sim mirror of the live protocol's extract_prepare
        # (records retained at the source until the copy lands).  It also
        # means destination selection, the only step that can fail
        # (quota, capacity), runs against an unmodified cache.
        degenerate = split_hkey == b_max
        preview: list[CacheRecord] = []
        pending_follows = False
        for lo, hi in segments:
            covers_split = not degenerate and lo <= split_hkey <= hi
            seg_hi = split_hkey if covers_split else hi
            preview.extend(node.records_in(lo, seg_hi))
            if pending is not None and lo <= pending.hkey <= seg_hi:
                pending_follows = True
            if covers_split:
                break
        required = sum(r.nbytes for r in preview)
        # Non-degenerate splits always change the bucket structure, so
        # retries make progress even if the destination later splits too.
        # A degenerate whole-bucket reassign changes nothing structural —
        # if the destination can't also hold the pending record, the full
        # bucket just ping-pongs between equally full nodes forever.
        if degenerate and pending_follows:
            required += pending.nbytes
        dest, alloc_s = self._choose_destination(node, required)

        # Phase 2 (copy): the snapshot *is* the victim set — stream it to
        # the destination while the source still holds every record.  A
        # crash between here and the commit below leaves duplicates
        # (resolved idempotently: derived results overwrite in place),
        # never loss — the same invariant the live cluster's two-phase
        # extract_prepare/extract_commit migration provides.
        victims: list[CacheRecord] = preview
        bytes_moved = sum(r.nbytes for r in victims)
        migration_s = self.network.transfer_time(bytes_moved, len(victims))
        self.clock.advance(migration_s)
        for rec in victims:
            dest.insert(rec)

        # Phase 3 (commit): flip routing to the destination, then delete
        # the source copies.
        if degenerate:
            # Degenerate split (single-record bucket at the bucket position):
            # reassign the entire bucket instead of inserting a duplicate.
            self.ring.reassign_bucket(b_max, dest)
            removed = 0
            for lo, hi in segments:
                removed += len(node.extract_range(lo, hi))
            new_bucket: int | None = None
        else:
            new_bucket = split_hkey
            self.ring.add_bucket(new_bucket, dest)
            self.ring.transfer_load(b_max, new_bucket, bytes_moved,
                                    len(victims))
            # Take segments in circular order up to and including k^μ.
            removed = 0
            for lo, hi in segments:
                if lo <= split_hkey <= hi:
                    removed += len(node.extract_range(lo, split_hkey))
                    break
                removed += len(node.extract_range(lo, hi))
        assert removed == len(victims), (
            f"split commit removed {removed} records from {node.node_id} "
            f"but copied {len(victims)}"
        )

        event = SplitEvent(
            step=self.clock.step,
            time=self.clock.now,
            src_id=node.node_id,
            dest_id=dest.node_id,
            bucket=b_max,
            new_bucket=new_bucket,
            records_moved=len(victims),
            bytes_moved=bytes_moved,
            migration_s=migration_s,
            allocation_s=alloc_s,
        )
        self.split_events.append(event)
        if self.on_split is not None:
            self.on_split(event)
        return event

    @staticmethod
    def _kth_hkey_in(node: CacheNode, segments: list[tuple[int, int]], k: int) -> int:
        """Hash position of the ``k``-th (0-based) record across segments.

        Segments arrive in circular order from
        :meth:`~repro.core.ring.ConsistentHashRing.interval_segments`; with
        the sentinel bucket there is exactly one.
        """
        remaining = k
        for lo, hi in segments:
            for rec in node.records_in(lo, hi):
                if remaining == 0:
                    return rec.hkey
                remaining -= 1
        raise IndexError(f"bucket holds fewer than {k + 1} records")

    def _choose_destination(
        self, src: CacheNode, nbytes: int
    ) -> tuple[CacheNode, float]:
        """Algorithm 2 lines 1-5: greedy least-loaded node, else allocate.

        Returns ``(destination, allocation_seconds)``.
        """
        if self.config.greedy:
            candidates = [n for n in self.live_nodes() if n is not src]
            if candidates:
                dest = min(candidates, key=lambda n: (n.used_bytes, n.node_id))
                if dest.fits(nbytes):
                    return dest, 0.0
        t0 = self.clock.now
        dest = self.allocate_node()
        alloc_s = self.clock.now - t0
        if not dest.fits(nbytes):
            raise CapacityError(
                f"freshly allocated {dest.node_id} ({dest.capacity_bytes} B) "
                f"cannot hold {nbytes} B migration"
            )
        return dest, alloc_s
