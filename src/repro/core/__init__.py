"""The paper's contribution: an elastic cooperative cloud cache.

Layering (bottom → top):

* :class:`ConsistentHashRing` — buckets ``B`` and ``NodeMap`` (Sec. II-A,
  Fig. 1), with per-bucket load accounting used by GBA's fullest-bucket
  selection.
* :class:`CacheNode` — one cloud node's slice of the cache: capacity
  accounting (``||n||``, ``⌈n⌉``) over a B+-tree index.
* :class:`GreedyBucketAllocator` — Algorithms 1 (GBA-insert) and 2
  (sweep-and-migrate).
* :class:`SlidingWindowEvictor` — the decay-based global eviction scheme
  (Sec. III-B) and :class:`Contractor` — the ε-periodic node-merge
  heuristic.
* :class:`ElasticCooperativeCache` — the public facade gluing the above to
  a :class:`~repro.cloud.SimulatedCloud`.
* :class:`StaticCooperativeCache` — the paper's static-N / LRU baseline.
* :class:`Coordinator` — the query front-end: cache lookup, service
  invocation on miss, metrics.
"""

from repro.core.config import (
    CacheConfig,
    ContractionConfig,
    EvictionConfig,
    ExperimentTimings,
)
from repro.core.ring import ConsistentHashRing, RingError
from repro.core.record import CacheRecord
from repro.core.cachenode import CacheNode, CapacityError
from repro.core.gba import GreedyBucketAllocator, SplitEvent
from repro.core.sliding_window import SlidingWindowEvictor
from repro.core.contraction import Contractor, MergeEvent
from repro.core.elastic import ElasticCooperativeCache
from repro.core.static_cache import StaticCooperativeCache
from repro.core.directory import DirectoryCache
from repro.core.autoscaler import AutoscaledModNCache, ResizeEvent
from repro.core.lru import LRUTracker
from repro.core.coordinator import Coordinator, QueryOutcome
from repro.core.metrics import MetricsRecorder, StepStats

__all__ = [
    "CacheConfig",
    "EvictionConfig",
    "ContractionConfig",
    "ExperimentTimings",
    "ConsistentHashRing",
    "RingError",
    "CacheRecord",
    "CacheNode",
    "CapacityError",
    "GreedyBucketAllocator",
    "SplitEvent",
    "SlidingWindowEvictor",
    "Contractor",
    "MergeEvent",
    "ElasticCooperativeCache",
    "StaticCooperativeCache",
    "DirectoryCache",
    "AutoscaledModNCache",
    "ResizeEvent",
    "LRUTracker",
    "Coordinator",
    "QueryOutcome",
    "MetricsRecorder",
    "StepStats",
]
