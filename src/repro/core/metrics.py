"""Per-step experiment metrics.

The paper records, at every time step, "the average service execution time
(in number of seconds real time), the number of times a query reuses a
cached record (i.e., hits), and the number of cache misses" (Sec. IV-A),
plus the node-allocation trace plotted against the right axes of
Figs. 3, 5 and 6.  :class:`MetricsRecorder` captures all of that and
derives the two speedup views the figures use:

* **cumulative speedup** (Fig. 3): total no-cache time over total observed
  time, from experiment start;
* **windowed speedup** (Figs. 5a-d): the same ratio over a trailing
  interval, which is what rises to the "maximum observable speedup" during
  the intensive phase and falls back after it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np


@dataclass
class StepStats:
    """Aggregates for one workload time step."""

    step: int
    queries: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    eviction_candidates: int = 0
    splits: int = 0
    allocations: int = 0
    merges: int = 0
    node_count: int = 0
    used_bytes: int = 0
    capacity_bytes: int = 0
    latency_sum_s: float = 0.0
    sim_time_s: float = 0.0
    cost_usd: float = 0.0
    # fault/availability counters (populated under fault injection)
    retries: int = 0
    failovers: int = 0
    degraded: int = 0
    recoveries: int = 0
    recovery_s: float = 0.0
    # overload-protection counters (populated under load shedding)
    shed: int = 0                #: requests shed by overloaded servers
    shed_background: int = 0     #: background requests dropped outright
    deadline_misses: int = 0     #: requests whose deadline budget expired
    breaker_fastfails: int = 0   #: requests short-circuited by open breakers
    queue_depth: int = 0         #: peak admission-queue depth observed
    # batched hot-path counters (populated by multi-key ops)
    batches: int = 0             #: multi-key batches issued
    batched_keys: int = 0        #: keys carried by those batches
    stripe_contention: int = 0   #: peak server lock-stripe contention seen
    # replication counters (populated with buddy replication enabled)
    replica_hits: int = 0        #: degraded reads served from a buddy copy
    handoff_depth: int = 0       #: peak hinted-handoff queue depth observed
    rebuild_bytes: int = 0       #: bytes re-placed by anti-entropy rebuilds

    @property
    def mean_batch_size(self) -> float:
        """Average keys per batch this step (0 when nothing batched)."""
        return self.batched_keys / self.batches if self.batches else 0.0

    @property
    def shed_rate(self) -> float:
        """Fraction of this step's queries shed by overload protection."""
        if not self.queries:
            return 0.0
        return (self.shed + self.shed_background) / self.queries

    @property
    def mean_latency_s(self) -> float:
        """Average observed per-query time this step."""
        return self.latency_sum_s / self.queries if self.queries else 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of this step's queries served from cache."""
        return self.hits / self.queries if self.queries else 0.0

    @property
    def availability(self) -> float:
        """Fraction of this step's queries served on the fast path (a
        degraded query fell back to recompute around a dead shard)."""
        if not self.queries:
            return 1.0
        return 1.0 - self.degraded / self.queries


class MetricsRecorder:
    """Streaming per-step metrics with numpy series extraction.

    Usage: call :meth:`record_query` per query and the other ``record_*``
    hooks as events occur; call :meth:`end_step` once per time step with a
    state snapshot.  Series are materialized lazily.

    Thread safety: the live stack calls the ``record_*`` hooks from many
    worker threads at once (striped servers, pipelined clients), so every
    hook and every snapshot takes one internal lock.  Without it, two
    threads racing ``_current()`` can each create a StepStats and orphan
    one, ``+=`` loses increments, and ``summary()`` can observe
    ``hits + misses != queries`` mid-update.
    """

    def __init__(self, keep_latencies: bool = False) -> None:
        self._lock = threading.RLock()  # reentrant: summary() -> series()
        self.steps: list[StepStats] = []
        self._open: StepStats | None = None
        self.total_queries = 0
        self.total_hits = 0
        self.total_misses = 0
        self.total_evictions = 0
        self.total_latency_s = 0.0
        self.total_retries = 0
        self.total_failovers = 0
        self.total_degraded = 0
        self.total_recoveries = 0
        self.total_recovery_s = 0.0
        self.total_shed = 0
        self.total_shed_background = 0
        self.total_deadline_misses = 0
        self.total_breaker_fastfails = 0
        self.total_batches = 0
        self.total_batched_keys = 0
        self.total_replica_hits = 0
        self.total_rebuild_bytes = 0
        #: per-query latency log (enabled with ``keep_latencies=True``);
        #: needed for tail percentiles, which step means wash out.
        self.keep_latencies = keep_latencies
        self._latencies: list[float] = []

    # ------------------------------------------------------------- hooks

    def _current(self) -> StepStats:
        if self._open is None:
            self._open = StepStats(step=len(self.steps))
        return self._open

    def record_query(self, *, hit: bool, latency_s: float) -> None:
        """Account one completed query."""
        with self._lock:
            s = self._current()
            s.queries += 1
            s.latency_sum_s += latency_s
            if hit:
                s.hits += 1
            else:
                s.misses += 1
            self.total_queries += 1
            self.total_hits += int(hit)
            self.total_misses += int(not hit)
            self.total_latency_s += latency_s
            if self.keep_latencies:
                self._latencies.append(latency_s)

    def record_eviction(self, evicted: int, candidates: int) -> None:
        """Account one slice-expiry eviction batch."""
        with self._lock:
            s = self._current()
            s.evictions += evicted
            s.eviction_candidates += candidates
            self.total_evictions += evicted

    def record_split(self, allocated: bool) -> None:
        """Account one GBA split (and its allocation, if any)."""
        with self._lock:
            s = self._current()
            s.splits += 1
            s.allocations += int(allocated)

    def record_merge(self) -> None:
        """Account one contraction merge."""
        with self._lock:
            self._current().merges += 1

    # ------------------------------------------------------- fault hooks

    def record_retry(self, count: int = 1) -> None:
        """Account idempotent-request retries (transport flaps)."""
        with self._lock:
            self._current().retries += count
            self.total_retries += count

    def record_failover(self) -> None:
        """Account one shard condemned and routed around."""
        with self._lock:
            self._current().failovers += 1
            self.total_failovers += 1

    def record_degraded(self) -> None:
        """Account one query served by recompute around a dead shard."""
        with self._lock:
            self._current().degraded += 1
            self.total_degraded += 1

    def record_recovery(self, downtime_s: float = 0.0) -> None:
        """Account one failed shard re-admitted after ``downtime_s``."""
        with self._lock:
            s = self._current()
            s.recoveries += 1
            s.recovery_s += downtime_s
            self.total_recoveries += 1
            self.total_recovery_s += downtime_s

    # ------------------------------------------------- replication hooks

    def record_replica_hit(self) -> None:
        """Account one degraded read served from a buddy's replica copy
        (a recompute the replication layer saved)."""
        with self._lock:
            self._current().replica_hits += 1
            self.total_replica_hits += 1

    def record_handoff_depth(self, depth: int) -> None:
        """Track the peak hinted-handoff queue depth seen this step
        (hints parked on buddies, awaiting a restore drain)."""
        with self._lock:
            s = self._current()
            s.handoff_depth = max(s.handoff_depth, depth)

    def record_rebuild(self, nbytes: int) -> None:
        """Account bytes re-placed by one anti-entropy rebuild pass."""
        with self._lock:
            self._current().rebuild_bytes += nbytes
            self.total_rebuild_bytes += nbytes

    # ---------------------------------------------------- overload hooks

    def record_shed(self, background: bool = False) -> None:
        """Account one request shed by overload protection (a server's
        admission queue was full, or a degraded-mode background drop)."""
        with self._lock:
            if background:
                self._current().shed_background += 1
                self.total_shed_background += 1
            else:
                self._current().shed += 1
                self.total_shed += 1

    def record_deadline_miss(self) -> None:
        """Account one request whose deadline budget expired."""
        with self._lock:
            self._current().deadline_misses += 1
            self.total_deadline_misses += 1

    def record_breaker_fastfail(self) -> None:
        """Account one request short-circuited by an open breaker."""
        with self._lock:
            self._current().breaker_fastfails += 1
            self.total_breaker_fastfails += 1

    def record_queue_depth(self, depth: int) -> None:
        """Track the peak admission-queue depth seen this step."""
        with self._lock:
            s = self._current()
            s.queue_depth = max(s.queue_depth, depth)

    # ------------------------------------------------------- batch hooks

    def record_batch(self, n_keys: int) -> None:
        """Account one multi-key batch carrying ``n_keys`` keys."""
        with self._lock:
            s = self._current()
            s.batches += 1
            s.batched_keys += n_keys
            self.total_batches += 1
            self.total_batched_keys += n_keys

    def record_stripe_contention(self, contended: int) -> None:
        """Track the peak server lock-stripe contention counter observed
        this step (servers report it cumulatively via ``stats``)."""
        with self._lock:
            s = self._current()
            s.stripe_contention = max(s.stripe_contention, contended)

    def end_step(self, *, step: int, node_count: int, used_bytes: int,
                 capacity_bytes: int, sim_time_s: float, cost_usd: float) -> StepStats:
        """Close the current step with a cache/cloud state snapshot."""
        with self._lock:
            s = self._current()
            s.step = step
            s.node_count = node_count
            s.used_bytes = used_bytes
            s.capacity_bytes = capacity_bytes
            s.sim_time_s = sim_time_s
            s.cost_usd = cost_usd
            self.steps.append(s)
            self._open = None
            return s

    # ------------------------------------------------------------ series

    def series(self, name: str) -> np.ndarray:
        """A numpy array of per-step values for attribute ``name``."""
        with self._lock:
            return np.array([getattr(s, name) for s in self.steps],
                            dtype=float)

    def cumulative_speedup(self, baseline_s: float) -> np.ndarray:
        """Per-step cumulative speedup: ``Σ baseline / Σ observed``."""
        queries = self.series("queries")
        latency = self.series("latency_sum_s")
        cum_q = np.cumsum(queries)
        cum_t = np.cumsum(latency)
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(cum_t > 0, (cum_q * baseline_s) / cum_t, 1.0)
        return out

    def windowed_speedup(self, baseline_s: float, window_steps: int = 10) -> np.ndarray:
        """Trailing-window speedup (what Figs. 5a-d plot over time)."""
        queries = self.series("queries")
        latency = self.series("latency_sum_s")
        kernel = np.ones(window_steps)
        q = np.convolve(queries, kernel)[: len(queries)]
        t = np.convolve(latency, kernel)[: len(latency)]
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(t > 0, (q * baseline_s) / t, 1.0)
        return out

    def interval_speedup(self, baseline_s: float,
                         interval_queries: int) -> list[tuple[int, float]]:
        """Speedup per fixed query-count interval (Fig. 3's x-axis of
        "every I queries elapsed").  Returns ``(queries_elapsed, speedup)``
        pairs."""
        out: list[tuple[int, float]] = []
        q_acc = 0
        t_acc = 0.0
        elapsed = 0
        for s in self.steps:
            q_acc += s.queries
            t_acc += s.latency_sum_s
            elapsed += s.queries
            if q_acc >= interval_queries:
                out.append((elapsed, (q_acc * baseline_s) / t_acc if t_acc else 1.0))
                q_acc = 0
                t_acc = 0.0
        if q_acc:
            out.append((elapsed, (q_acc * baseline_s) / t_acc if t_acc else 1.0))
        return out

    def availability_series(self) -> np.ndarray:
        """Per-step availability (what a fault benchmark plots over time):
        the fraction of each step's queries that did *not* fall back to
        degraded-mode recompute.  Steps with no queries count as fully
        available."""
        queries = self.series("queries")
        degraded = self.series("degraded")
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(queries > 0, 1.0 - degraded / queries, 1.0)

    def latency_percentiles(self, qs=(50, 90, 99, 100)) -> dict[float, float]:
        """Per-query latency percentiles (requires ``keep_latencies``).

        Raises
        ------
        RuntimeError
            If per-query latencies were not being kept.
        """
        if not self.keep_latencies:
            raise RuntimeError("construct MetricsRecorder(keep_latencies=True)")
        with self._lock:
            if not self._latencies:
                return {q: 0.0 for q in qs}
            arr = np.asarray(self._latencies)
        values = np.percentile(arr, qs)
        return {q: float(v) for q, v in zip(qs, values)}

    # ----------------------------------------------------------- summary

    @property
    def overall_hit_rate(self) -> float:
        """Hits over all queries so far."""
        with self._lock:
            return (self.total_hits / self.total_queries
                    if self.total_queries else 0.0)

    def mean_node_count(self) -> float:
        """Average node allocation over the experiment's lifespan."""
        counts = self.series("node_count")
        return float(counts.mean()) if counts.size else 0.0

    def steps_to_csv(self, path) -> None:
        """Write the per-step table as CSV (pandas/gnuplot-ready)."""
        from pathlib import Path

        fields = ["step", "queries", "hits", "misses", "evictions",
                  "splits", "allocations", "merges", "node_count",
                  "used_bytes", "capacity_bytes", "latency_sum_s",
                  "sim_time_s", "cost_usd", "retries", "failovers",
                  "degraded", "recoveries", "recovery_s", "shed",
                  "shed_background", "deadline_misses",
                  "breaker_fastfails", "queue_depth", "batches",
                  "batched_keys", "stripe_contention", "replica_hits",
                  "handoff_depth", "rebuild_bytes"]
        lines = [",".join(fields)]
        for s in self.steps:
            lines.append(",".join(
                f"{getattr(s, f):.6g}" if isinstance(getattr(s, f), float)
                else str(getattr(s, f)) for f in fields))
        Path(path).write_text("\n".join(lines) + "\n")

    def summary(self, baseline_s: float) -> dict:
        """Flat summary dict for reports (internally consistent: taken
        under the lock, so ``hits + misses == queries`` always holds)."""
        with self._lock:
            return self._summary_locked(baseline_s)

    def _summary_locked(self, baseline_s: float) -> dict:
        cum = self.cumulative_speedup(baseline_s)
        return {
            "queries": self.total_queries,
            "hits": self.total_hits,
            "misses": self.total_misses,
            "hit_rate": self.overall_hit_rate,
            "evictions": self.total_evictions,
            "final_speedup": float(cum[-1]) if cum.size else 1.0,
            "mean_nodes": self.mean_node_count(),
            "max_nodes": float(self.series("node_count").max()) if self.steps else 0.0,
            "final_cost_usd": self.steps[-1].cost_usd if self.steps else 0.0,
            "retries": self.total_retries,
            "failovers": self.total_failovers,
            "degraded": self.total_degraded,
            "recoveries": self.total_recoveries,
            "availability": (1.0 - self.total_degraded / self.total_queries
                             if self.total_queries else 1.0),
            "shed": self.total_shed,
            "shed_background": self.total_shed_background,
            "deadline_misses": self.total_deadline_misses,
            "breaker_fastfails": self.total_breaker_fastfails,
            "shed_rate": ((self.total_shed + self.total_shed_background)
                          / self.total_queries if self.total_queries else 0.0),
            "batches": self.total_batches,
            "batched_keys": self.total_batched_keys,
            "mean_batch_size": (self.total_batched_keys / self.total_batches
                                if self.total_batches else 0.0),
            "replica_hits": self.total_replica_hits,
            "rebuild_bytes": self.total_rebuild_bytes,
        }
