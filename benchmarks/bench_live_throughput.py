"""Live-layer performance: real wall-clock ops/sec through the protocol.

Unlike the figure benches (virtual time), this measures the actual TCP
implementation — put/get round-trips and sweep streaming through the
length-prefixed protocol on localhost.  Useful as a regression guard on
the wire path (an accidental O(n) in framing or a lost buffer would show
up here, not in the simulations).
"""

import numpy as np

from benchmarks._util import emit
from repro.live.client import LiveCacheClient
from repro.live.server import LiveCacheServer

N_OPS = 300
PAYLOAD = bytes(range(256)) * 4  # 1 KiB, the paper's result size


def test_live_put_get_roundtrip(benchmark):
    server = LiveCacheServer(capacity_bytes=1 << 26).start()
    try:
        client = LiveCacheClient(server.address)
        keys = np.random.default_rng(0).permutation(N_OPS).tolist()

        def cycle():
            for k in keys:
                client.put(k, PAYLOAD)
            hits = 0
            for k in keys:
                hits += client.get(k) is not None
            return hits

        hits = benchmark(cycle)
        assert hits == N_OPS

        stats = client.stats()
        per_op_us = benchmark.stats.stats.mean / (2 * N_OPS) * 1e6
        emit("live_throughput",
             f"live TCP cache: {2 * N_OPS} ops/cycle, "
             f"{per_op_us:.1f} us/op mean, "
             f"{stats['records']} records resident")
        benchmark.extra_info["us_per_op"] = per_op_us
        client.close()
    finally:
        server.stop()


def test_live_sweep_streaming(benchmark):
    server = LiveCacheServer(capacity_bytes=1 << 26).start()
    try:
        client = LiveCacheClient(server.address)
        for k in range(1000):
            client.put(k, PAYLOAD)

        def sweep():
            return len(client.sweep(100, 899))

        count = benchmark(sweep)
        assert count == 800
        client.close()
    finally:
        server.stop()
