"""Ablation D — consistent hashing vs a CRISP-style central directory.

Sec. V contrasts the design with CRISP's "centralized directory service
[tracking] the exact locations of cached data".  Both approaches are run
over the same workload; we compare metadata footprint (directory state
grows with *records*, ring state with *buckets*), per-lookup overhead,
and behaviour on growth (directory growth moves nothing; the ring moves
one bucket interval; mod-N moves almost everything — Ablation A).
"""

from benchmarks._util import emit
from repro.core.directory import DirectoryCache
from repro.experiments.configs import fig3_params
from repro.experiments.harness import SystemBundle, build_elastic, make_trace, run_trace
from repro.experiments.report import ascii_table
from repro.services.base import SyntheticService
from repro.core.coordinator import Coordinator
from repro.cloud.provider import SimulatedCloud
from repro.cloud.network import NetworkModel
from repro.sim.clock import SimClock
from repro.sim.rng import RngStreams

RING_BUCKET_BYTES = 48  # position + node ref + load counters


def _run_directory(params, trace):
    streams = RngStreams(seed=params.seed)
    clock = SimClock()
    cloud = SimulatedCloud(clock=clock, rng=streams.get("allocation"),
                           max_nodes=params.max_nodes)
    network = NetworkModel()
    cache = DirectoryCache(cloud=cloud, network=network,
                           config=params.cache_config(), elastic=True)
    clock.reset()
    service = SyntheticService(clock, service_time_s=params.timings.service_time_s,
                               result_bytes=params.timings.result_bytes)
    coordinator = Coordinator(cache=cache, service=service, clock=clock,
                              network=network, timings=params.timings)
    bundle = SystemBundle(params=params, clock=clock, cloud=cloud,
                          network=network, cache=cache, service=service,
                          coordinator=coordinator)
    metrics = run_trace(bundle, trace)
    return bundle, metrics


def test_directory_vs_consistent_hashing(benchmark):
    def run():
        params = fig3_params("mini")
        trace = make_trace(params)

        ring_bundle = build_elastic(params)
        ring_metrics = run_trace(ring_bundle, trace)
        dir_bundle, dir_metrics = _run_directory(params, trace)
        return params, ring_bundle, ring_metrics, dir_bundle, dir_metrics

    params, ring_bundle, ring_metrics, dir_bundle, dir_metrics = \
        benchmark.pedantic(run, rounds=1, iterations=1)

    ring_meta = len(ring_bundle.cache.ring.buckets) * RING_BUCKET_BYTES
    dir_meta = dir_bundle.cache.metadata_bytes
    rows = [
        ["consistent-hash (GBA)",
         ring_metrics.summary(23.0)["final_speedup"],
         ring_bundle.cache.node_count, ring_meta,
         len(ring_bundle.cache.ring.buckets)],
        ["central directory (CRISP-style)",
         dir_metrics.summary(23.0)["final_speedup"],
         dir_bundle.cache.node_count, dir_meta,
         dir_bundle.cache.record_count],
    ]
    report = ascii_table(
        ["system", "speedup", "nodes", "metadata bytes", "routing entries"],
        rows, title="Ablation D: routing metadata, directory vs ring")
    extra = (f"\ndirectory lookup adds "
             f"{dir_bundle.cache.lookup_overhead_s() * 1e3:.2f} ms per access; "
             f"ring routes locally in O(log p).")
    emit("ablation_directory", report + extra)

    benchmark.extra_info.update({
        "ring_metadata_bytes": ring_meta,
        "directory_metadata_bytes": dir_meta,
    })

    # Both reach the same speedup class (placement is not the bottleneck)...
    ring_speedup = ring_metrics.summary(23.0)["final_speedup"]
    dir_speedup = dir_metrics.summary(23.0)["final_speedup"]
    assert dir_speedup > 0.7 * ring_speedup
    # ... but directory metadata scales with records, the ring's with
    # buckets — orders of magnitude apart at cache scale.
    assert dir_meta > 10 * ring_meta
    assert len(ring_bundle.cache.ring.buckets) < dir_bundle.cache.record_count / 5
