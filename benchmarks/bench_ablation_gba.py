"""Ablation C — the "greedy" in Greedy Bucket Allocation.

GBA treats node allocation as "a last-resort option to save cost",
preferring to migrate overflow data onto existing least-loaded nodes.
This ablation disables the greedy step (every overflow allocates) and
compares fleet size, cost, and split overhead on the Fig. 3 workload.
"""

import dataclasses

from benchmarks._util import emit
from repro.experiments.configs import fig3_params
from repro.experiments.harness import build_elastic, make_trace, run_trace
from repro.experiments.report import ascii_table


def _run(greedy: bool):
    params = fig3_params("mini")
    params = dataclasses.replace(params, greedy=greedy,
                                 name=f"gba-greedy-{greedy}", max_nodes=256)
    trace = make_trace(params)
    bundle = build_elastic(params)
    metrics = run_trace(bundle, trace)
    splits = bundle.cache.gba.split_events
    return {
        "greedy": greedy,
        "final_nodes": bundle.cache.node_count,
        "allocating_splits": sum(1 for e in splits if e.allocated),
        "reusing_splits": sum(1 for e in splits if not e.allocated),
        "cost_usd": bundle.cloud.cost_so_far(),
        "speedup": float(metrics.cumulative_speedup(23.0)[-1]),
    }


def test_greedy_vs_always_allocate(benchmark):
    results = benchmark.pedantic(lambda: [_run(True), _run(False)],
                                 rounds=1, iterations=1)
    emit("ablation_gba", ascii_table(
        ["variant", "final nodes", "alloc splits", "reuse splits",
         "cost ($)", "speedup"],
        [[("greedy (GBA)" if r["greedy"] else "always-allocate"),
          r["final_nodes"], r["allocating_splits"], r["reusing_splits"],
          r["cost_usd"], r["speedup"]] for r in results],
        title="Ablation C: greedy reuse vs always-allocate on overflow"))

    greedy, always = results
    benchmark.extra_info.update({
        "greedy_nodes": greedy["final_nodes"],
        "always_nodes": always["final_nodes"],
    })

    # Greedy reuses nodes at least once and never needs MORE nodes.
    assert greedy["reusing_splits"] > 0
    assert always["reusing_splits"] == 0
    assert greedy["final_nodes"] <= always["final_nodes"]
    # Performance is equivalent — the greedy step is purely a cost lever.
    assert abs(greedy["speedup"] - always["speedup"]) / always["speedup"] < 0.2
