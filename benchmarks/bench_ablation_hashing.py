"""Ablation A — consistent hashing vs mod-N static hashing.

Quantifies Sec. II-A's motivation (Fig. 1): growing a mod-N cache
rehashes nearly everything ("hash disruption"), while consistent hashing
relocates only the new bucket's interval.
"""

import numpy as np

from benchmarks._util import emit
from repro.core.ring import ConsistentHashRing
from repro.experiments.report import ascii_table


def _mod_n_moved(keys: np.ndarray, n_from: int, n_to: int) -> float:
    """Fraction of keys whose mod-N placement changes."""
    return float(np.mean((keys % n_from) != (keys % n_to)))


def _consistent_moved(keys: list[int], growth_steps: int, ring_range: int) -> list[float]:
    """Fraction moved at each single-node growth of a consistent ring."""
    ring = ConsistentHashRing(ring_range=ring_range)
    ring.add_bucket(ring_range - 1, "n0")
    fractions = []
    rng = np.random.default_rng(7)
    for i in range(1, growth_steps + 1):
        before = [ring.node_for_key(k) for k in keys]
        # new bucket at a fresh position (midpoint heuristic like GBA's splits)
        pos = int(rng.integers(0, ring_range - 1))
        while pos in ring.node_map:
            pos = int(rng.integers(0, ring_range - 1))
        ring.add_bucket(pos, f"n{i}")
        after = [ring.node_for_key(k) for k in keys]
        fractions.append(
            sum(b is not a for b, a in zip(before, after)) / len(keys)
        )
    return fractions


def test_hash_disruption(benchmark):
    ring_range = 1 << 14
    keys = np.arange(0, ring_range, 3)

    def run():
        rows = []
        consistent = _consistent_moved(keys.tolist(), growth_steps=15,
                                       ring_range=ring_range)
        for n in range(1, 16):
            rows.append([
                f"{n}->{n + 1}",
                _mod_n_moved(keys, n, n + 1),
                consistent[n - 1],
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_hashing", ascii_table(
        ["growth", "mod-N moved frac", "consistent moved frac"], rows,
        title="Ablation A: hash disruption on single-node growth"))

    mod_mean = float(np.mean([r[1] for r in rows]))
    cons_mean = float(np.mean([r[2] for r in rows]))
    benchmark.extra_info.update({"mod_mean": mod_mean, "consistent_mean": cons_mean})

    # mod-N moves the large majority; consistent hashing a small fraction.
    assert mod_mean > 0.5
    assert cons_mean < 0.25
    assert cons_mean < mod_mean / 3
