"""Analysis bench — the paper's Sec. III complexity claims, measured.

Validates on live structures:
* splits never move more than ⌈n⌉/2 records (the ``T_migrate`` bound);
* migration time is linear in records moved (``moved·(T_net+1)``);
* ``h(k)`` lookup time grows ~log in the bucket count ``p``;
* B+-tree height stays within the classical bound behind ``log₂||n||``.
"""

import numpy as np

from benchmarks._util import emit
from repro.analysis.complexity import (
    check_migration_bound,
    fit_linear,
    measure_lookup_scaling,
    measure_tree_height,
)
from repro.cloud.network import NetworkModel
from repro.cloud.provider import SimulatedCloud
from repro.core.config import CacheConfig
from repro.core.elastic import ElasticCooperativeCache
from repro.experiments.report import ascii_table
from repro.sim.clock import SimClock

REC = 100
CAPACITY_RECORDS = 20


def _grown_cache():
    cloud = SimulatedCloud(clock=SimClock(), rng=np.random.default_rng(2),
                           max_nodes=256)
    cache = ElasticCooperativeCache(
        cloud=cloud, network=NetworkModel(),
        config=CacheConfig(ring_range=1 << 14,
                           node_capacity_bytes=CAPACITY_RECORDS * REC))
    rng = np.random.default_rng(3)
    sizes = rng.integers(REC // 2, 2 * REC, size=1200)
    for k in range(1200):
        cache.put(k, "x", nbytes=int(sizes[k]))
    return cache


def test_complexity_bounds(benchmark):
    def run():
        cache = _grown_cache()
        events = cache.gba.split_events
        bound_report = check_migration_bound(events, CAPACITY_RECORDS)
        a, b, r2 = fit_linear([e.records_moved for e in events],
                              [e.migration_s for e in events])
        lookups = measure_lookup_scaling([16, 256, 4096], lookups=10_000)
        heights = measure_tree_height([100, 10_000, 100_000], order=64)
        return bound_report, (a, b, r2), lookups, heights

    bound_report, (a, b, r2), lookups, heights = benchmark.pedantic(
        run, rounds=1, iterations=1)

    lines = []
    lines.append(ascii_table(
        ["splits", "max moved", "bound ⌈n⌉/2+1", "violations"],
        [[bound_report.splits, bound_report.max_moved,
          bound_report.bound, bound_report.violations]],
        title="T_migrate record bound (Sec. III-A)"))
    lines.append("")
    lines.append(f"T_migrate linearity: migration_s ≈ {a:.2e}·moved + {b:.2e}"
                 f"  (r² = {r2:.4f})")
    lines.append("")
    lines.append(ascii_table(
        ["buckets p", "s/lookup"],
        [[p, f"{t:.3e}"] for p, t in lookups],
        title="h(k) lookup time vs bucket count (binary search, O(log2 p))"))
    lines.append("")
    lines.append(ascii_table(
        ["records n", "height", "bound"],
        heights, title="B+-tree height vs classical bound"))
    emit("analysis_complexity", "\n".join(lines))

    benchmark.extra_info.update({
        "bound_violations": bound_report.violations,
        "migration_r2": r2,
    })

    assert bound_report.holds
    assert r2 > 0.9
    # 256x more buckets must cost far less than 256x lookup time.
    assert lookups[-1][1] < lookups[0][1] * 16
    assert all(h <= bound for _, h, bound in heights)
