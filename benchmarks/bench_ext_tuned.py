"""Extension G — all future-work mitigations composed.

Vanilla GBA pays node boots and migrations inline on the query that
triggers them (Fig. 4's spikes reach minutes).  The tuned system (warm
pool + predictive pre-splits + adaptive window) moves that work off the
query path.  The decisive metric is the **worst per-step mean latency** —
what a user at the worst moment experiences — at comparable cost.
"""

import numpy as np

from benchmarks._util import emit
from repro.experiments.configs import fig5_params
from repro.experiments.harness import build_elastic, make_trace, run_trace
from repro.experiments.report import ascii_table
from repro.extensions.tuned import build_tuned, run_tuned


def _latency_profile(metrics):
    lat = np.array([s.mean_latency_s for s in metrics.steps if s.queries])
    return float(lat.max()), float(np.percentile(lat, 99)), float(lat.mean())


def test_tuned_system_vs_vanilla(benchmark):
    def run():
        params = fig5_params(window_slices=100, scale="mini")
        trace = make_trace(params)

        vanilla_bundle = build_elastic(params)
        vanilla = run_trace(vanilla_bundle, trace)

        tuned_system = build_tuned(params, spares=1, query_budget=1500)
        tuned = run_tuned(tuned_system, trace)
        return params, vanilla_bundle, vanilla, tuned_system, tuned

    params, vanilla_bundle, vanilla, tuned_system, tuned = benchmark.pedantic(
        run, rounds=1, iterations=1)

    v_max, v_p99, v_mean = _latency_profile(vanilla)
    t_max, t_p99, t_mean = _latency_profile(tuned)
    v_cost = vanilla_bundle.cloud.cost_so_far()
    t_cost = tuned_system.cloud.cost_so_far()

    rows = [
        ["vanilla GBA", v_max, v_p99, v_mean,
         vanilla.summary(23.0)["final_speedup"], v_cost],
        ["tuned (pool+prefetch+adaptive)", t_max, t_p99, t_mean,
         tuned.summary(23.0)["final_speedup"], t_cost],
    ]
    emit("ext_tuned", ascii_table(
        ["system", "worst step lat (s)", "p99 step lat (s)", "mean lat (s)",
         "speedup", "cost ($)"],
        rows, title="Extension G: the composed future-work system "
                    "(phased workload, mini scale)"))

    benchmark.extra_info.update({
        "vanilla_worst_s": v_max, "tuned_worst_s": t_max,
    })

    # A step of pure misses averages service_time + miss_overhead — that
    # floor is workload, not system.  The system's contribution is the
    # *excess* above it: boots and migrations landing on queries.
    floor = params.timings.service_time_s + params.timings.miss_overhead_s
    v_excess = v_max - floor
    t_excess = t_max - floor
    assert v_excess > 1.0, "vanilla should show inline allocation stalls"
    assert t_excess < 0.25 * v_excess
    # At no loss of throughput-level performance...
    assert tuned.summary(23.0)["final_speedup"] \
        > 0.8 * vanilla.summary(23.0)["final_speedup"]
    # ...and bounded extra standing cost for the spare.
    assert t_cost < 1.7 * v_cost
    # Prefetch actually did background work.
    assert len(tuned_system.prefetch.presplit_events) > 0
