"""Ablation B — the 65 % churn-avoidance merge threshold.

The paper sets the node-merge threshold "to 65% of space required to store
the coalesced cache to address churn-avoidance, i.e., repeated
allocation/deallocation of nodes".  This sweep runs the phased workload at
several thresholds and counts allocation/deallocation churn alongside the
achieved node economy.
"""

import dataclasses

from benchmarks._util import emit
from repro.experiments.configs import fig5_params
from repro.experiments.harness import build_elastic, make_trace, run_trace
from repro.experiments.report import ascii_table

THRESHOLDS = (0.35, 0.50, 0.65, 0.80, 0.95)


def _run_threshold(threshold: float):
    params = fig5_params(window_slices=100, scale="mini")
    params = dataclasses.replace(
        params,
        name=f"merge-{threshold}",
        contraction=dataclasses.replace(params.contraction,
                                        merge_threshold=threshold),
    )
    trace = make_trace(params)
    bundle = build_elastic(params)
    metrics = run_trace(bundle, trace)
    allocations = len(bundle.cloud.allocations)
    merges = len(bundle.cache.contractor.merge_events)
    return {
        "threshold": threshold,
        "allocations": allocations,
        "merges": merges,
        "churn": allocations + merges,
        "mean_nodes": metrics.mean_node_count(),
        "final_nodes": int(metrics.series("node_count")[-1]),
    }


def test_merge_threshold_sweep(benchmark):
    results = benchmark.pedantic(
        lambda: [_run_threshold(t) for t in THRESHOLDS],
        rounds=1, iterations=1,
    )
    emit("ablation_merge", ascii_table(
        ["threshold", "allocations", "merges", "churn", "mean nodes", "final nodes"],
        [[r["threshold"], r["allocations"], r["merges"], r["churn"],
          r["mean_nodes"], r["final_nodes"]] for r in results],
        title="Ablation B: merge-threshold sweep (phased workload, mini scale)"))

    by_t = {r["threshold"]: r for r in results}
    benchmark.extra_info.update({f"churn_{t}": by_t[t]["churn"] for t in THRESHOLDS})

    # Aggressive merging (high threshold) must not *increase* allocations
    # unboundedly, and conservative merging must still contract:
    assert by_t[0.65]["merges"] > 0
    # More permissive thresholds merge at least as often.
    assert by_t[0.95]["merges"] >= by_t[0.35]["merges"]
    # The permissive end risks churn: merges + re-allocations exceed the
    # paper's conservative setting (this is exactly why 65 % was chosen).
    assert by_t[0.95]["churn"] >= by_t[0.65]["churn"]
