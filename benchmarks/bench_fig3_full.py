"""Fig. 3 at the paper's exact scale — 64 K keys, 2×10⁶ queries.

Opt-in (≈2 minutes all variants): ``REPRO_FULL_SCALE=1 pytest
benchmarks/bench_fig3_full.py --benchmark-only``.  The scaled bench
(``bench_fig3.py``) preserves all ratios and runs by default; this one
exists to show the reproduction holds with nothing scaled at all.

Full-scale results (also in EXPERIMENTS.md): statics 1.149/1.350/2.058×,
GBA 18.5× with a terminal fleet of **17 nodes** against the paper's 15 —
closer than the scaled run's 21, because the larger absolute capacity
(4 369 records/node) shrinks the relative cost of half-split packing.
"""

import os

import pytest

from benchmarks._util import emit
from repro.experiments.fig3 import run_fig3

pytestmark = pytest.mark.skipif(
    not os.environ.get("REPRO_FULL_SCALE"),
    reason="full-scale run is opt-in: set REPRO_FULL_SCALE=1",
)


def test_fig3_full_scale(benchmark):
    result = benchmark.pedantic(lambda: run_fig3(scale="full"),
                                rounds=1, iterations=1)
    emit("fig3_full", result.report())
    benchmark.extra_info.update({
        "gba": result.final_speedup["gba"],
        "gba_nodes": int(result.gba_nodes[-1]),
    })
    assert result.final_speedup["gba"] > 15.0          # paper: >15.2x
    assert 14 <= int(result.gba_nodes[-1]) <= 19       # paper: 15
    assert result.final_speedup["static-2"] == pytest.approx(1.15, abs=0.05)
    assert result.final_speedup["static-4"] == pytest.approx(1.34, abs=0.08)
    assert result.final_speedup["static-8"] == pytest.approx(2.0, abs=0.15)
