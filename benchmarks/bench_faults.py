"""Availability under failure: a scripted kill/recover schedule against
the live cluster.

The paper's cluster ran on EC2, where instance loss is routine; this
bench measures what that costs.  A three-server live cluster serves a
skewed workload while a :class:`~repro.faults.plan.FaultPlan` kills one
server mid-run and restarts it later.  The hardened
:class:`~repro.live.coordinator.LiveCoordinator` detects the failure,
fails the dead buckets over to ring successors, serves degraded
(recompute) traffic in the meantime, and re-admits + repopulates the
server on recovery — all without a single wrong result.

Emits an availability/hit-rate timeline (per 50-query window) to
``benchmarks/results/bench_faults.txt``.
"""

import numpy as np

from benchmarks._util import emit
from repro.core.metrics import MetricsRecorder
from repro.faults import FailureDetector, FaultPlan, LiveFaultDriver, RetryPolicy
from repro.live.client import LiveClusterClient
from repro.live.coordinator import LiveCoordinator
from repro.live.server import LiveCacheServer

N_QUERIES = 600
WINDOW = 50
KILL_AT, RECOVER_AT = 200, 400
KEYSPACE = 400
RING = 1 << 20
# Spread key ids across the whole ring so all three servers own traffic
# (the identity hash would otherwise pack the keyspace into one bucket).
STRIDE = RING // KEYSPACE


def _derived(key: int) -> bytes:
    """The deterministic 'service': same key => same derived bytes."""
    return (f"derived:{key}:".encode() * 6)[:96]


def test_availability_under_kill_recover(benchmark):
    rng = np.random.default_rng(20100607)
    # Skewed re-reference stream so hits matter (zipf-ish over KEYSPACE).
    keys = ((rng.zipf(1.3, size=N_QUERIES) % KEYSPACE) * STRIDE).astype(
        int).tolist()

    def run() -> dict:
        servers: dict[int, LiveCacheServer] = {
            i: LiveCacheServer(capacity_bytes=1 << 22).start()
            for i in range(3)
        }
        addresses = [servers[i].address for i in range(3)]
        metrics = MetricsRecorder()
        cluster = LiveClusterClient(
            addresses, ring_range=1 << 20,
            retry=RetryPolicy(max_attempts=2, deadline_s=1.0,
                              base_delay_s=0.01, max_delay_s=0.05),
            timeout=1.0)
        coord = LiveCoordinator(
            cluster, _derived,
            detector=FailureDetector(threshold=2),
            metrics=metrics)

        def kill(slot: int) -> None:
            servers[slot].stop()

        def restore(slot: int) -> None:
            host, port = addresses[slot]
            servers[slot] = LiveCacheServer(
                host=host, port=port, capacity_bytes=1 << 22).start()
            coord.check_recovery()

        driver = LiveFaultDriver(
            FaultPlan.kill_and_recover(node=0, at=KILL_AT, outage=RECOVER_AT - KILL_AT),
            kill=kill, restore=restore)

        wrong = 0
        for i, key in enumerate(keys):
            driver.tick(i)
            value = coord.query(key)
            if value != _derived(key):
                wrong += 1
            if (i + 1) % WINDOW == 0:
                metrics.end_step(step=(i + 1) // WINDOW,
                                 node_count=len(cluster.clients),
                                 used_bytes=0, capacity_bytes=0,
                                 sim_time_s=0.0, cost_usd=0.0)
        out = {"wrong": wrong, "stats": coord.stats, "metrics": metrics,
               "servers": len(cluster.clients)}
        cluster.close()
        for server in servers.values():
            server.stop()
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    stats, metrics = out["stats"], out["metrics"]

    # Hard guarantees: recompute fallback preserves correctness, the ring
    # repaired itself, and the killed server was re-admitted.
    assert out["wrong"] == 0
    assert stats.failovers >= 1
    assert stats.recoveries >= 1
    assert out["servers"] == 3  # back to full strength

    avail = metrics.availability_series()
    hits = [s.hit_rate for s in metrics.steps]
    lines = [
        "availability under a scripted kill/recover "
        f"(kill node 0 @ q{KILL_AT}, restart @ q{RECOVER_AT}):",
        "",
        f"{'window':>6} {'queries':>8} {'hit_rate':>9} {'avail':>7} "
        f"{'failovers':>9} {'recoveries':>10}",
    ]
    for i, step in enumerate(metrics.steps):
        lines.append(
            f"{i:>6} {step.queries:>8} {hits[i]:>9.3f} {avail[i]:>7.3f} "
            f"{step.failovers:>9} {step.recoveries:>10}")
    lines += [
        "",
        f"totals: {stats.queries} queries, hit rate {stats.hit_rate:.3f}, "
        f"availability {stats.availability:.3f}",
        f"failure path: {stats.degraded_queries} degraded queries, "
        f"{stats.failovers} failover(s), {stats.recoveries} recovery(ies), "
        f"{stats.recovered_records} records migrated home, "
        f"downtime {stats.downtime_s:.2f}s, "
        f"{out['stats'].dropped_writes} dropped cache writes",
    ]
    emit("bench_faults", "\n".join(lines))
    benchmark.extra_info["availability"] = stats.availability
    benchmark.extra_info["failovers"] = stats.failovers
