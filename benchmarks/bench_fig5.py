"""Fig. 5(a-d) — speedup under eviction/contraction, m ∈ {50,100,200,400}.

Runs at the paper's full scale (32 K keys, 70 K queries, 600 steps).
Paper targets: peak speedup ≈1.55× at m=50 with ~2 nodes average, rising
monotonically to ≈8× at m=400 with ~6 nodes; node counts contract after
the intensive period ends at step 300 (except m=400, whose window still
covers it).
"""


from benchmarks._util import emit
from repro.experiments.fig5 import run_fig5
from repro.experiments.report import ascii_table


def test_fig5_window_size_panels(benchmark):
    result = benchmark.pedantic(lambda: run_fig5(scale="full"),
                                rounds=1, iterations=1)

    lines = [result.report(), ""]
    # Per-step series, downsampled, one block per panel (the 4 subplots).
    for m, panel in result.panels.items():
        stride = max(1, len(panel.speedup) // 20)
        rows = [[i, float(panel.speedup[i]), int(panel.nodes[i])]
                for i in range(0, len(panel.speedup), stride)]
        lines.append(ascii_table(
            ["step", "speedup", "nodes"], rows,
            title=f"Fig. 5 panel m={m} (speedup left axis, nodes right axis)"))
        lines.append("")
    emit("fig5", "\n".join(lines))

    peaks = {m: p.peak_speedup for m, p in result.panels.items()}
    benchmark.extra_info.update(
        {f"peak_m{m}": v for m, v in peaks.items()}
        | {f"mean_nodes_m{m}": p.mean_nodes for m, p in result.panels.items()}
    )

    # Shape assertions: monotone in m; paper-ballpark endpoints.
    assert peaks[50] < peaks[100] < peaks[200] < peaks[400]
    assert 1.2 < peaks[50] < 2.2          # paper: ~1.55x
    assert 4.0 < peaks[400] < 10.0        # paper: ~8x
    assert 1.5 <= result.panels[50].mean_nodes <= 3.0   # paper: ⌈1.7⌉ = 2
    assert 4.5 <= result.panels[400].mean_nodes <= 8.0  # paper: ⌈5.6⌉ = 6
    assert result.panels[400].max_nodes <= 9            # paper: max 8
    # Contraction after the intensive phase for the smaller windows.
    for m in (50, 100, 200):
        p = result.panels[m]
        assert p.final_nodes < p.max_nodes
