"""Batched hot path: ops/sec at batch sizes 1/8/64/256 vs serial ops.

Measures the real TCP implementation on localhost — the same wire and
store the cluster uses — comparing per-key ``put``/``get`` round-trips
against ``multi_put``/``multi_get`` at increasing batch sizes.  The win
is round-trip amortization (one header + ``n`` record frames per
``max_batch`` keys, chunks pipelined), so it grows with batch size until
serialization cost dominates.

Run via ``make batch``; the report lands in
``benchmarks/results/bench_batch.txt``.
"""

import time

from benchmarks._util import emit
from repro.live.client import LiveCacheClient
from repro.live.server import LiveCacheServer

N_KEYS = 512
PAYLOAD = bytes(range(256)) * 4  # 1 KiB, the paper's result size
BATCH_SIZES = (1, 8, 64, 256)


def _measure(fn) -> float:
    """Best-of-3 wall-clock seconds (localhost noise is spiky)."""
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_batch_speedup():
    server = LiveCacheServer(capacity_bytes=1 << 27).start()
    try:
        client = LiveCacheClient(server.address)
        keys = list(range(N_KEYS))
        items = [(k, PAYLOAD) for k in keys]

        def serial():
            for k, v in items:
                client.put(k, v)
            found = 0
            for k in keys:
                found += client.get(k) is not None
            assert found == N_KEYS

        serial_s = _measure(serial)
        serial_ops = 2 * N_KEYS / serial_s

        lines = [
            f"batched hot path: {N_KEYS} keys x {len(PAYLOAD)} B payloads, "
            f"put+get cycles on localhost",
            f"  serial      {serial_ops:10.0f} ops/s   (baseline)",
        ]
        speedups = {}
        for size in BATCH_SIZES:
            client.max_batch = size

            def batched():
                result = client.multi_put(items)
                assert result.ok and result.acked == N_KEYS
                found = client.multi_get(keys)
                assert len(found) == N_KEYS

            batch_s = _measure(batched)
            ops = 2 * N_KEYS / batch_s
            speedups[size] = ops / serial_ops
            lines.append(f"  batch={size:<4}  {ops:10.0f} ops/s   "
                         f"{speedups[size]:5.1f}x serial")

        stats = client.stats()
        lines.append(f"  server saw {stats['multi_ops']} multi-ops, "
                     f"max batch {stats['max_batch']}, "
                     f"{stats['stripes']} lock stripes, "
                     f"{stats['stripe_contention']} contended acquisitions")
        emit("bench_batch", "\n".join(lines))

        # Acceptance: batch 64 amortizes >= 5x over per-key round-trips.
        assert speedups[64] >= 5.0, \
            f"batch=64 speedup {speedups[64]:.1f}x below 5x floor"
        # Monotone-ish sanity: big batches beat tiny ones.
        assert speedups[256] > speedups[1]
        client.close()
    finally:
        server.stop()
