"""Storage-tier bench — the Sec. IV-D cost/performance assessment.

The paper assessed S3/EBS/instance-memory tradeoffs and deferred details
to a companion paper; this bench produces the comparison concretely: for
the Fig. 3-sized deployment, monthly cost and effective speedup per tier,
plus the footprint sweep showing where the tiers cross over.
"""

from benchmarks._util import emit
from repro.cloud.storage import compare_tiers
from repro.experiments.report import ascii_table

GB = 1_000_000_000


def test_storage_tier_tradeoffs(benchmark):
    def run():
        # The Fig. 3 deployment: ~64 K cached results, ~300 KB effective
        # footprint each (what 15 full Small instances imply), queried at
        # the experiment's observed rate.
        deployment = compare_tiers(
            footprint_bytes=20 * GB,
            reads_per_month=50_000_000,
            mean_object_bytes=1024,
            service_time_s=23.0,
            hit_rate=0.93,
        )
        sweep = {
            gb: compare_tiers(footprint_bytes=gb * GB,
                              reads_per_month=5_000_000,
                              mean_object_bytes=1024)
            for gb in (1, 5, 20, 100)
        }
        return deployment, sweep

    deployment, sweep = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [ascii_table(
        ["tier", "nodes", "$/month", "hit time (s)", "speedup", "persistent"],
        [[r["tier"], r["nodes"], r["monthly_usd"], r["hit_time_s"],
          r["speedup"], r["persistent"]] for r in deployment],
        title="Sec. IV-D: storage tiers for the Fig. 3 deployment "
              "(20 GB cached, 50 M reads/month, 93% hit rate)"), ""]

    rows = []
    for gb, tiers in sweep.items():
        by = {r["tier"]: r for r in tiers}
        rows.append([gb, by["ram"]["monthly_usd"], by["ebs"]["monthly_usd"],
                     by["s3"]["monthly_usd"]])
    lines.append(ascii_table(
        ["footprint (GB)", "ram $/mo", "ebs $/mo", "s3 $/mo"], rows,
        title="Monthly cost vs footprint (5 M reads/month)"))
    emit("storage_tiers", "\n".join(lines))

    by_tier = {r["tier"]: r for r in deployment}
    benchmark.extra_info.update(
        {f"{t}_usd": r["monthly_usd"] for t, r in by_tier.items()})

    # The paper's qualitative conclusions:
    # performance ordering ram > ebs > s3 ...
    assert by_tier["ram"]["speedup"] > by_tier["ebs"]["speedup"] \
        > by_tier["s3"]["speedup"]
    # ... persistence costs capacity dollars but saves compute dollars at
    # this footprint (one node vs a RAM fleet).
    assert by_tier["ram"]["nodes"] > 1
    assert by_tier["ebs"]["monthly_usd"] < by_tier["ram"]["monthly_usd"]
    # In-memory keeps the paper's headline speedup regime (>10x).
    assert by_tier["ram"]["speedup"] > 10
