"""Calibration-sensitivity bench — how sturdy is the reproduction?

Asserts the independence/monotonicity structure that separates measured
results from calibrated constants (see `repro/analysis/sensitivity.py`
and EXPERIMENTS.md's calibration section).
"""

from benchmarks._util import emit
from repro.analysis.sensitivity import (
    by_system,
    sweep_boot_latency,
    sweep_capacity,
    sweep_hit_overhead,
)
from repro.experiments.report import ascii_table


def test_calibration_sensitivity(benchmark):
    def run():
        return (sweep_hit_overhead(), sweep_boot_latency(), sweep_capacity())

    hit_sweep, boot_sweep, cap_sweep = benchmark.pedantic(run, rounds=1,
                                                          iterations=1)

    def table(points, title):
        return ascii_table(
            ["param", "value", "system", "speedup", "hit rate",
             "mean nodes", "max nodes"],
            [[p.parameter, p.value, p.system, p.speedup, p.hit_rate,
              p.mean_nodes, p.max_nodes] for p in points],
            title=title)

    emit("sensitivity", "\n\n".join([
        table(hit_sweep, "Hit-path cost sweep"),
        table(boot_sweep, "Boot-latency sweep"),
        table(cap_sweep, "Per-node capacity sweep"),
    ]))

    # 1. Speedups fall monotonically with hit cost — but GBA's win over
    #    static-4 survives every value (ordering is measurement, the
    #    magnitude is calibration).
    gba = by_system(hit_sweep, "gba")
    st4 = by_system(hit_sweep, "static-4")
    assert all(a.speedup > b.speedup for a, b in zip(gba, gba[1:]))
    for g, s in zip(gba, st4):
        assert g.speedup > 2 * s.speedup

    # 2. Hit rates and fleet sizes are invariant to hit cost.
    assert len({round(p.hit_rate, 6) for p in gba}) == 1
    assert len({p.max_nodes for p in gba}) == 1

    # 3. Boot latency moves neither hit rate nor fleet size (it only
    #    shifts Fig. 4's overhead axis).
    boots = by_system(boot_sweep, "gba")
    assert len({round(p.hit_rate, 6) for p in boots}) == 1
    assert len({p.max_nodes for p in boots}) == 1

    # 4. Static hit rate scales with capacity; GBA's final hit rate does
    #    not (it grows nodes to fit regardless) — but its fleet shrinks
    #    as nodes get bigger.
    cap_static = by_system(cap_sweep, "static-4")
    assert all(a.hit_rate < b.hit_rate for a, b in zip(cap_static, cap_static[1:]))
    cap_gba = by_system(cap_sweep, "gba")
    assert len({round(p.hit_rate, 6) for p in cap_gba}) == 1
    assert all(a.max_nodes >= b.max_nodes for a, b in zip(cap_gba, cap_gba[1:]))
