"""Live replication — post-kill availability vs steady-state overhead.

The robustness trade the replica layer claims: killing a primary should
leave its range's values readable from the ring-successor buddy (warm
hits instead of a recompute storm), and paying for that — a second,
per-key-serialized RPC on every write — must not tax the steady-state
*read* path, which never touches the replica namespace while the
primary is healthy.

Measured here on a real 3-server loopback cluster, replication off vs
on: steady-state read p99 (manual ``perf_counter`` timings over a
read-heavy mix), then one kill (real process death + failover) and a
single pass over the dead range counting queries served without
recompute.
"""

import random
import time

from benchmarks._util import emit
from repro.experiments.report import ascii_table
from repro.live.client import LiveClusterClient
from repro.live.coordinator import LiveCoordinator
from repro.live.server import LiveCacheServer

RING = 1 << 20
KEYS = 180
READS = 2400
WRITE_EVERY = 20        #: one write per this many reads (read-heavy)
SEED = 20100607


def _percentile(samples, pct):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(pct / 100 * len(ordered)))]


def _run(replicated: bool):
    rng = random.Random(SEED)
    servers = [LiveCacheServer(capacity_bytes=1 << 22).start()
               for _ in range(3)]
    cluster = LiveClusterClient([s.address for s in servers],
                                ring_range=RING, replication=replicated)
    computes = [0]

    def compute(key: int) -> bytes:
        computes[0] += 1
        return b"payload-%d" % key

    coordinator = LiveCoordinator(cluster, compute)
    try:
        keys = [j * (RING // KEYS) for j in range(KEYS)]
        for k in keys:
            cluster.put(k, b"payload-%d" % k)

        # Steady state: reads all hit; the occasional write exercises
        # the (replicated) put path without letting it dominate p99.
        read_lat, write_lat = [], []
        for i in range(READS):
            key = keys[rng.randrange(KEYS)]
            if i % WRITE_EVERY == 0:
                t0 = time.perf_counter()
                cluster.put(key, b"payload-%d" % key)
                write_lat.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            coordinator.query(key)
            read_lat.append(time.perf_counter() - t0)

        # Kill the owner of the first key — real process death, then
        # the failover the detector would perform.
        victim = cluster.address_for(keys[0])
        vkeys = [k for k in keys if cluster.address_for(k) == victim]
        servers[[s.address for s in servers].index(victim)].stop()
        cluster.fail_server(victim, forward=False)

        # One pass over the dead range: how much of it is still served
        # from cache (buddy replicas) rather than recomputed?
        computes[0] = 0
        for k in vkeys:
            coordinator.query(k)
        post_kill_hits = len(vkeys) - computes[0]

        return {
            "replicated": replicated,
            "read_p50_ms": _percentile(read_lat, 50) * 1e3,
            "read_p99_ms": _percentile(read_lat, 99) * 1e3,
            "write_p99_ms": _percentile(write_lat, 99) * 1e3,
            "victim_keys": len(vkeys),
            "post_kill_hits": post_kill_hits,
            "post_kill_hit_rate": post_kill_hits / len(vkeys),
        }
    finally:
        cluster.close()
        for s in servers:
            s.stop()


def test_replication_availability_vs_overhead(benchmark):
    results = benchmark.pedantic(lambda: [_run(False), _run(True)],
                                 rounds=1, iterations=1)
    base, repl = results
    emit("bench_replication", ascii_table(
        ["config", "read p50 ms", "read p99 ms", "write p99 ms",
         "victim keys", "post-kill hits", "post-kill hit rate"],
        [[("replicated" if r["replicated"] else "unprotected"),
          round(r["read_p50_ms"], 3), round(r["read_p99_ms"], 3),
          round(r["write_p99_ms"], 3), r["victim_keys"],
          r["post_kill_hits"], round(r["post_kill_hit_rate"], 3)]
         for r in results],
        title="Live buddy replication: one primary killed mid-run "
              f"({KEYS} keys, {READS} steady-state reads)"))
    benchmark.extra_info.update({
        "post_kill_hit_rate_unprotected": base["post_kill_hit_rate"],
        "post_kill_hit_rate_replicated": repl["post_kill_hit_rate"],
        "read_p99_ms_unprotected": base["read_p99_ms"],
        "read_p99_ms_replicated": repl["read_p99_ms"],
    })

    # The kill hit a real share of the keyspace...
    assert base["victim_keys"] >= KEYS // 6
    # ...replication keeps the dead range warm (the unprotected
    # cluster recomputes essentially all of it)...
    assert repl["post_kill_hit_rate"] >= 0.9
    assert repl["post_kill_hit_rate"] >= 2 * max(
        base["post_kill_hit_rate"], 0.25)
    # ...and the steady-state read path does not pay for it: replica
    # legs ride only on writes, reads never consult a healthy buddy.
    assert repl["read_p99_ms"] <= 1.15 * base["read_p99_ms"] + 0.05
