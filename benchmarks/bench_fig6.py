"""Fig. 6(a-d) — data reuse and eviction behaviour over time.

Full paper scale.  Targets: reuse rises during the intensive period in
every panel; eviction turns aggressive in the cooldown for m ≤ 200; the
m=400 window (still covering the intensive period) keeps allocating after
step 300 while the others contract.
"""

from benchmarks._util import emit
from repro.experiments.fig6 import run_fig6
from repro.experiments.report import ascii_table


def test_fig6_reuse_and_eviction(benchmark):
    result = benchmark.pedantic(lambda: run_fig6(scale="full"),
                                rounds=1, iterations=1)

    lines = [result.report(), ""]
    for m, panel in result.panels.items():
        stride = max(1, len(panel.hits) // 20)
        rows = [[i, int(panel.hits[i]), int(panel.evictions[i]), int(panel.nodes[i])]
                for i in range(0, len(panel.hits), stride)]
        lines.append(ascii_table(
            ["step", "hits", "evictions", "nodes"], rows,
            title=f"Fig. 6 panel m={m}"))
        lines.append("")
    emit("fig6", "\n".join(lines))

    for m, panel in result.panels.items():
        hits = panel.phase_means(panel.hits)
        benchmark.extra_info[f"hits_intensive_m{m}"] = hits["intensive"]
        # Reuse rises in the intensive period, in every panel.
        assert hits["intensive"] > hits["normal"]

    # Eviction follows waning interest for the windows that fit within
    # the intensive period.
    for m in (50, 100, 200):
        ev = result.panels[m].phase_means(result.panels[m].evictions)
        assert ev["cooldown"] > 0

    # m=400 keeps its fleet after step 300 (window still spans the burst);
    # smaller windows shed nodes.
    p400 = result.panels[400]
    p100 = result.panels[100]
    assert p400.nodes[-1] >= p400.nodes[300] - 1
    assert p100.nodes[-1] < p100.nodes[300]
