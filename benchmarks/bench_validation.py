"""The scorecard bench — every paper claim validated in one run.

This is the repository's headline check: ``validate_all`` runs Figs. 3-7
and scores each claim from the paper's evaluation against our measured
values (the acceptance bands are written down in
``repro/experiments/validate.py`` and argued in EXPERIMENTS.md).
"""

from benchmarks._util import emit
from repro.experiments.validate import validate_all


def test_paper_scorecard(benchmark):
    card = benchmark.pedantic(lambda: validate_all(), rounds=1, iterations=1)
    emit("validation_scorecard", card.report())
    benchmark.extra_info["passed"] = card.passed
    benchmark.extra_info["total"] = card.total
    failing = [t.claim for t, ok, _ in card.rows if not ok]
    assert card.all_passed, f"paper targets failing: {failing}"
