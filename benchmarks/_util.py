"""Shared helpers for the benchmark harness.

Each benchmark regenerates one paper figure (or an ablation) and emits the
series/rows the paper plots.  Because pytest captures stdout, reports are
*also* written to ``benchmarks/results/<name>.txt`` so the evidence behind
EXPERIMENTS.md survives the run.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a report and persist it under ``benchmarks/results/``."""
    print(f"\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
