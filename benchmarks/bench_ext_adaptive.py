"""Extension D — adaptive window sizing vs fixed m.

The paper's stated future work (Secs. IV-D, VI): a dynamic m should match
a large fixed window's speedup during the burst while shedding its cost
after.  We run fixed m ∈ {50, 400} and the adaptive controller over the
same phased trace and compare peak speedup vs node-hours.
"""

from benchmarks._util import emit
from repro.experiments.configs import fig5_params
from repro.experiments.harness import build_elastic, make_trace
from repro.experiments.report import ascii_table
from repro.extensions.adaptive_window import AdaptiveWindowController


def _run(window: int, adaptive: bool):
    params = fig5_params(window_slices=window, scale="full")
    trace = make_trace(params)
    bundle = build_elastic(params)
    controller = None
    if adaptive:
        controller = AdaptiveWindowController(
            bundle.cache.evictor, query_budget=20_000, m_min=25, m_max=400)
    coordinator, cloud = bundle.coordinator, bundle.cloud
    for step, keys in trace.steps():
        for key in keys.tolist():
            coordinator.query(int(key))
        if controller is not None:
            controller.observe_step(len(keys))
        coordinator.end_step(cost_usd=cloud.cost_so_far())
    metrics = coordinator.metrics
    nodes = metrics.series("node_count")
    return {
        "name": f"adaptive(start m={window})" if adaptive else f"fixed m={window}",
        "peak_speedup": float(metrics.windowed_speedup(23.0, 20).max()),
        "mean_nodes": float(nodes.mean()),
        "final_nodes": int(nodes[-1]),
        "node_steps": float(nodes.sum()),  # cost proxy: node-steps held
    }


def test_adaptive_window_vs_fixed(benchmark):
    results = benchmark.pedantic(
        lambda: [_run(50, False), _run(400, False), _run(400, True)],
        rounds=1, iterations=1,
    )
    emit("ext_adaptive", ascii_table(
        ["variant", "peak speedup", "mean nodes", "final nodes", "node-steps"],
        [[r["name"], r["peak_speedup"], r["mean_nodes"], r["final_nodes"],
          r["node_steps"]] for r in results],
        title="Extension D: adaptive window vs fixed m (phased workload)"))

    fixed50, fixed400, adaptive = results
    benchmark.extra_info.update({r["name"]: r["peak_speedup"] for r in results})

    # The adaptive controller must land between the fixed extremes:
    # much faster than m=50, cheaper than m=400.
    assert adaptive["peak_speedup"] > 1.5 * fixed50["peak_speedup"]
    assert adaptive["node_steps"] < fixed400["node_steps"]
    # And it sheds nodes after the burst, unlike fixed m=400.
    assert adaptive["final_nodes"] <= fixed400["final_nodes"]
