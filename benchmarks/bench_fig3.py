"""Fig. 3 — relative speedup + node allocation, GBA vs static-2/4/8.

Paper targets: statics converge at 1.15× / 1.34× / 2.0×; GBA exceeds 15×
and stabilizes its fleet (the paper ends at 15 nodes over 64 K keys; our
half-split packing lands at ~20 over the scaled 4 K keyspace — same shape,
see EXPERIMENTS.md).
"""

from benchmarks._util import emit
from repro.experiments.fig3 import run_fig3
from repro.experiments.report import ascii_table


def test_fig3_speedup_and_allocation(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig3(scale="scaled"), rounds=1, iterations=1
    )

    lines = [result.report(), ""]
    rows = []
    series = result.speedup_series
    points = max(len(v) for v in series.values())
    for i in range(points):
        row = [series["gba"][i][0] if i < len(series["gba"]) else ""]
        for name in ("gba", "static-2", "static-4", "static-8"):
            vals = series[name]
            row.append(vals[i][1] if i < len(vals) else "")
        rows.append(row)
    lines.append(ascii_table(
        ["queries", "gba", "static-2", "static-4", "static-8"],
        rows, title="Per-interval speedup (paper Fig. 3, log10 y-axis)"))

    nodes = result.gba_nodes
    stride = max(1, len(nodes) // 12)
    lines.append("")
    lines.append(ascii_table(
        ["step", "gba nodes"],
        [[i, int(nodes[i])] for i in range(0, len(nodes), stride)],
        title="GBA node allocation (right y-axis of Fig. 3)"))
    emit("fig3", "\n".join(lines))

    benchmark.extra_info.update({
        "gba_final_speedup": result.final_speedup["gba"],
        "static2": result.final_speedup["static-2"],
        "static4": result.final_speedup["static-4"],
        "static8": result.final_speedup["static-8"],
        "gba_final_nodes": int(nodes[-1]),
    })

    # Shape assertions: who wins, by roughly what factor.
    assert result.final_speedup["gba"] > 10
    assert 1.0 < result.final_speedup["static-2"] < 1.4
    assert result.final_speedup["static-4"] < result.final_speedup["static-8"] < 3.0
