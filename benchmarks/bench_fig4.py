"""Fig. 4 — node-splitting overhead (allocation + migration per split).

Paper targets: overhead is large but amortized ("seldom invoked"), and
"it is the node allocation time, and not the data movement time, which is
the main contributor".
"""

import numpy as np

from benchmarks._util import emit
from repro.experiments.fig4 import run_fig4


def test_fig4_split_overhead(benchmark):
    result = benchmark.pedantic(lambda: run_fig4(scale="scaled"),
                                rounds=1, iterations=1)
    emit("fig4", result.report())

    benchmark.extra_info.update({
        "splits": len(result.events),
        "allocating_splits": result.splits_with_allocation,
        "allocation_fraction": result.allocation_fraction,
        "total_overhead_s": result.total_overhead_s,
    })

    # Shape assertions.
    assert result.events, "GBA must split under the Fig. 3 workload"
    assert result.allocation_fraction > 0.9  # allocation dominates
    # Splits are rare relative to query volume (amortization claim).
    total_queries = result.params.schedule.total_queries
    assert len(result.events) < total_queries / 1000
    # Splits concentrate early (stabilization claim).
    steps = np.array([e.step for e in result.events])
    assert np.median(steps) < result.params.schedule.total_steps / 2
