"""Fig. 7 — data-reuse behaviour across decay values α ∈ {.99,.98,.95,.93}.

Full paper scale, m = 100, threshold pinned to the α=0.99 baseline.
Targets: smaller α evicts more aggressively and grows the fleet more
slowly, while total hits "do not vary enough to make any extraordinary
contribution to speedup".
"""

from benchmarks._util import emit
from repro.experiments.fig7 import run_fig7
from repro.experiments.report import ascii_table


def test_fig7_decay_sweep(benchmark):
    result = benchmark.pedantic(lambda: run_fig7(scale="full"),
                                rounds=1, iterations=1)

    lines = [result.report(), ""]
    # Cumulative reuse over time per α (the figure's curves).
    import numpy as np
    alphas = sorted(result.curves)
    any_curve = result.curves[alphas[0]]
    stride = max(1, len(any_curve.hits) // 20)
    cum = {a: np.cumsum(result.curves[a].hits) for a in alphas}
    rows = [[i] + [int(cum[a][i]) for a in alphas]
            for i in range(0, len(any_curve.hits), stride)]
    lines.append(ascii_table(
        ["step"] + [f"α={a}" for a in alphas], rows,
        title="Cumulative data reuse (hits) over time"))
    emit("fig7", "\n".join(lines))

    curves = result.curves
    benchmark.extra_info.update(
        {f"hits_a{a}": c.total_hits for a, c in curves.items()}
        | {f"evictions_a{a}": c.total_evictions for a, c in curves.items()}
    )

    # Shape assertions: monotone trends across α.
    assert curves[0.93].total_evictions >= curves[0.95].total_evictions \
        >= curves[0.98].total_evictions >= curves[0.99].total_evictions
    assert curves[0.93].total_hits <= curves[0.99].total_hits
    assert curves[0.93].max_nodes <= curves[0.99].max_nodes
    # ... but hits don't collapse (the paper's closing observation).
    assert curves[0.93].total_hits > 0.6 * curves[0.99].total_hits
