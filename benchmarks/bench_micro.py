"""Microbenchmarks of the hot substrate paths.

These are real wall-clock measurements (the one place pytest-benchmark's
statistics are used with multiple rounds): B+-tree operations, ring
lookups, and the vectorized curve encoders — including the
vectorized-vs-scalar comparison that justifies the numpy implementations
(the HPC guides' "vectorize the hot loop" rule, quantified).
"""

import numpy as np

from repro.btree.bplustree import BPlusTree
from repro.core.ring import ConsistentHashRing
from repro.sfc.hilbert import hilbert_encode
from repro.sfc.zorder import morton_encode3

N = 10_000


def test_btree_insert_throughput(benchmark):
    keys = np.random.default_rng(0).permutation(N).tolist()

    def build():
        tree = BPlusTree(order=64)
        for k in keys:
            tree.insert(k, None)
        return tree

    tree = benchmark(build)
    assert len(tree) == N


def test_btree_search_throughput(benchmark):
    tree = BPlusTree(order=64)
    for k in range(N):
        tree.insert(k, k)
    probe = np.random.default_rng(1).integers(0, N, size=N).tolist()

    def search_all():
        total = 0
        for k in probe:
            total += tree.search(k)
        return total

    total = benchmark(search_all)
    assert total == sum(probe)


def test_ring_lookup_throughput(benchmark):
    ring = ConsistentHashRing(ring_range=1 << 20)
    rng = np.random.default_rng(2)
    for pos in rng.choice(1 << 20, size=1024, replace=False).tolist():
        ring.add_bucket(int(pos), "n")
    probes = rng.integers(0, 1 << 20, size=N).tolist()

    def lookup_all():
        for k in probes:
            ring.bucket_for_hkey(k)

    benchmark(lookup_all)


def test_morton_vectorized_speedup(benchmark):
    """The vectorized encoder must beat per-key calls by a wide margin."""
    rng = np.random.default_rng(3)
    coords = rng.integers(0, 1 << 20, size=(N, 3)).astype(np.uint64)

    def vectorized():
        return morton_encode3(coords[:, 0], coords[:, 1], coords[:, 2])

    result = benchmark(vectorized)
    assert result.shape == (N,)

    import time
    t0 = time.perf_counter()
    _scalar = [int(morton_encode3(int(x), int(y), int(t)))
              for x, y, t in coords[:1000].tolist()]
    scalar_per_key = (time.perf_counter() - t0) / 1000
    vector_per_key = benchmark.stats.stats.mean / N
    benchmark.extra_info["vector_speedup"] = scalar_per_key / vector_per_key
    assert scalar_per_key / vector_per_key > 20


def test_hilbert_vectorized_throughput(benchmark):
    rng = np.random.default_rng(4)
    coords = rng.integers(0, 1 << 16, size=(N, 3)).astype(np.uint64)

    def encode():
        return hilbert_encode(coords, nbits=16)

    result = benchmark(encode)
    assert result.shape == (N,)
