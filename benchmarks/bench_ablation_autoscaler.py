"""Ablation E — GBA vs a rule-based auto-scaler (the Sec. I contrast).

"While auto-scalers are suitable for Map-Reduce applications ... in cases
where much more distributed coordination is required, elasticity does not
directly translate to scalability."

Both systems face the phased flash-crowd workload.  The auto-scaler tracks
utilization and does grow/shrink the fleet — but every action is a
whole-cache rehash, so it moves an order of magnitude more data than
GBA's bucket-interval migrations, and those rehashes stall queries.
"""

from benchmarks._util import emit
from repro.cloud.network import NetworkModel
from repro.cloud.provider import SimulatedCloud
from repro.core.autoscaler import AutoscaledModNCache
from repro.core.coordinator import Coordinator
from repro.experiments.configs import fig5_params
from repro.experiments.harness import SystemBundle, build_elastic, make_trace, run_trace
from repro.experiments.report import ascii_table
from repro.services.base import SyntheticService
from repro.sim.clock import SimClock
from repro.sim.rng import RngStreams


def _run_autoscaler(params, trace):
    streams = RngStreams(seed=params.seed)
    clock = SimClock()
    cloud = SimulatedCloud(clock=clock, rng=streams.get("allocation"),
                           max_nodes=params.max_nodes)
    network = NetworkModel()
    cache = AutoscaledModNCache(
        cloud=cloud, network=network, config=params.cache_config(),
        n_nodes=1, scale_up_at=0.8, scale_down_at=0.3,
        cooldown_slices=3, max_fleet=20)
    clock.reset()
    service = SyntheticService(clock,
                               service_time_s=params.timings.service_time_s,
                               result_bytes=params.timings.result_bytes)
    coordinator = Coordinator(cache=cache, service=service, clock=clock,
                              network=network, timings=params.timings)
    bundle = SystemBundle(params=params, clock=clock, cloud=cloud,
                          network=network, cache=cache, service=service,
                          coordinator=coordinator)
    metrics = run_trace(bundle, trace)
    return bundle, metrics


def test_gba_vs_rule_based_autoscaler(benchmark):
    def run():
        import dataclasses

        from repro.core.config import ContractionConfig, EvictionConfig

        # Matched retention: the autoscaler never evicts by interest, so
        # GBA runs with the infinite window too — the remaining difference
        # is pure coordination (bucket migration vs whole-cache rehash).
        params = fig5_params(window_slices=100, scale="mini")
        params = dataclasses.replace(
            params,
            eviction=EvictionConfig(window_slices=None),
            contraction=ContractionConfig(enabled=False),
        )
        trace = make_trace(params)
        gba_bundle = build_elastic(params)
        gba_metrics = run_trace(gba_bundle, trace)
        auto_bundle, auto_metrics = _run_autoscaler(params, trace)
        return params, gba_bundle, gba_metrics, auto_bundle, auto_metrics

    params, gba_bundle, gba_metrics, auto_bundle, auto_metrics = \
        benchmark.pedantic(run, rounds=1, iterations=1)

    gba_moved = sum(e.records_moved for e in gba_bundle.cache.gba.split_events)
    gba_moved += sum(e.records_moved
                     for e in gba_bundle.cache.contractor.merge_events)
    auto = auto_bundle.cache
    auto_moved = sum(e.records_moved for e in auto.resize_events)
    auto_stall = sum(e.overhead_s for e in auto.resize_events)
    gba_stall = sum(e.overhead_s for e in gba_bundle.cache.gba.split_events)
    gba_stall += sum(e.migration_s
                     for e in gba_bundle.cache.contractor.merge_events)

    gba_speedup = gba_metrics.summary(23.0)["final_speedup"]
    auto_speedup = auto_metrics.summary(23.0)["final_speedup"]
    gba_cost = gba_bundle.cloud.cost_so_far()
    auto_cost = auto_bundle.cloud.cost_so_far()
    rows = [
        ["GBA (coordinated)", gba_speedup, gba_metrics.mean_node_count(),
         len(gba_bundle.cache.gba.split_events)
         + len(gba_bundle.cache.contractor.merge_events),
         gba_moved, gba_stall, gba_cost, gba_cost / gba_speedup],
        ["rule-based autoscaler (mod-N)", auto_speedup,
         auto_metrics.mean_node_count(),
         len(auto.resize_events), auto_moved, auto_stall, auto_cost,
         auto_cost / auto_speedup],
    ]
    emit("ablation_autoscaler", ascii_table(
        ["system", "speedup", "mean nodes", "scaling actions",
         "records moved", "stall (s)", "cost ($)", "$/speedup"],
        rows, title="Ablation E: elasticity ≠ scalability "
                    "(phased workload, mini scale)"))

    benchmark.extra_info.update({
        "gba_records_moved": gba_moved,
        "autoscaler_records_moved": auto_moved,
    })

    # Both elastically track the burst (similar fleets, real speedup)...
    assert auto_metrics.mean_node_count() > 1.0
    assert auto_speedup > 1.1
    # ... but the uncoordinated scaler pays hash disruption: far more
    # record movement per scaling action (the paper's "elasticity does
    # not directly translate to scalability").
    gba_actions = max(1, len(gba_bundle.cache.gba.split_events)
                      + len(gba_bundle.cache.contractor.merge_events))
    auto_actions = max(1, len(auto.resize_events))
    assert auto_moved / auto_actions > 2 * (gba_moved / gba_actions)
    # With matched retention both land on the same speedup and fleet —
    # elasticity alone is achievable either way.  The difference is what
    # it costs to get there: the autoscaler shipped ~7x the records for
    # the same outcome (and each rehash is a stop-the-world event for the
    # keys in flight, which our latency model only partially charges).
    assert abs(gba_speedup - auto_speedup) / auto_speedup < 0.15
    assert auto_moved > 4 * gba_moved
