"""Ablation F — space-filling-curve choice for the B²-tree keys.

Sec. II-A adopts B²-trees precisely because curve linearization keeps
spatiotemporally related results adjacent in B+-tree leaves — which is
what makes sweep-migrate move *coherent* regions and spatially clustered
query bursts hit contiguous key ranges.  This ablation quantifies the
property for Hilbert vs Morton (Z-order) vs plain row-major keys with the
two standard locality measures:

* **block compactness** — the longest bounding-box side spanned by runs
  of consecutive keys (what one migrated bucket interval covers
  spatially; elongated = smeared across the domain);
* **range-query clustering** (Moon et al.) — how many contiguous key
  runs a small spatial box decomposes into (each run is one B+-tree leaf
  sweep; fewer is better).
"""

import numpy as np

from benchmarks._util import emit
from repro.experiments.report import ascii_table
from repro.sfc.btwo import Linearizer

NBITS = 5
SIDE = 1 << NBITS


def _all_coords():
    axes = [np.arange(SIDE)] * 3
    return np.stack(np.meshgrid(*axes, indexing="ij"), axis=-1).reshape(-1, 3)


def block_elongation(lin: Linearizer, block: int = 256) -> float:
    """Mean longest bbox side of consecutive-key blocks (lower=compact)."""
    keys = np.sort(lin.encode_many(_all_coords()))
    coords = lin.decode_many(keys).astype(np.int64)
    sides = []
    for start in range(0, SIDE ** 3 - block, block):
        chunk = coords[start:start + block]
        extent = chunk.max(axis=0) - chunk.min(axis=0) + 1
        sides.append(float(extent.max()))
    return float(np.mean(sides))


def range_query_runs(lin: Linearizer, box: int = 4, samples: int = 200,
                     seed: int = 0) -> float:
    """Mean number of contiguous key runs covering a ``box³`` query."""
    rng = np.random.default_rng(seed)
    offsets = np.stack(np.meshgrid(*[np.arange(box)] * 3, indexing="ij"),
                       axis=-1).reshape(-1, 3)
    runs = []
    for _ in range(samples):
        origin = rng.integers(0, SIDE - box, size=3)
        cells = origin + offsets
        keys = np.sort(lin.encode_many(cells).astype(np.int64))
        breaks = int((np.diff(keys) > 1).sum())
        runs.append(breaks + 1)
    return float(np.mean(runs))


def test_curve_locality(benchmark):
    def run():
        rows = []
        for curve in ("hilbert", "morton", "rowmajor"):
            lin = Linearizer(nbits=NBITS, curve=curve)
            rows.append([curve, block_elongation(lin), range_query_runs(lin)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_curves", ascii_table(
        ["curve", "block longest side (256 keys)", "runs per 4³ range query"],
        rows, title="Ablation F: B²-tree linearization curves "
                    f"({SIDE}³ spatiotemporal grid)"))

    by = {r[0]: r for r in rows}
    benchmark.extra_info.update({f"{c}_runs": by[c][2] for c in by})

    # SFC blocks stay compact (cube-ish); row-major blocks smear across a
    # full axis of the domain — so a migrated bucket interval under
    # row-major keys is spatially incoherent.
    assert by["hilbert"][1] < 0.5 * by["rowmajor"][1]
    assert by["morton"][1] < 0.5 * by["rowmajor"][1]
    # Hilbert beats Z-order on range clustering (the clustering theorem);
    # row-major is competitive on *small axis-aligned* boxes (r² columns)
    # — its failure mode is the elongation above, not this metric.
    assert by["hilbert"][2] < by["morton"][2]
    assert by["hilbert"][2] <= by["rowmajor"][2] * 1.1
