"""Extension H — transient data availability under node loss.

Sec. V: DHT systems tolerate churn but "do not focus on offering
transient data availability when a node disconnects, which is crucial to
our application scenario"; Sec. VI lists data replication as the answer.
This bench kills the most-loaded cache node mid-burst, with and without
buddy replication, and measures the hit-rate dip and recovery.
"""

import numpy as np

from benchmarks._util import emit
from repro.experiments.configs import fig5_params
from repro.experiments.harness import build_elastic, make_trace
from repro.experiments.report import ascii_table
from repro.extensions.replication import ReplicationManager

FAIL_STEP = 60


def _run(replicated: bool):
    params = fig5_params(window_slices=100, scale="mini")
    trace = make_trace(params)
    bundle = build_elastic(params)
    repl = ReplicationManager(bundle.cache)
    coordinator, cloud, cache = bundle.coordinator, bundle.cloud, bundle.cache

    lost = recovered = 0
    for step, keys in trace.steps():
        if step == FAIL_STEP and cache.node_count >= 2:
            if replicated:
                repl.sync()
            victim = max(cache.nodes, key=lambda n: n.used_bytes)
            lost = repl.fail_node(victim)
            if replicated:
                recovered = repl.recover_node_loss(victim.node_id)
        for key in keys.tolist():
            coordinator.query(int(key))
        coordinator.end_step(cost_usd=cloud.cost_so_far())
    metrics = coordinator.metrics

    hit_rates = np.array([s.hit_rate for s in metrics.steps])
    pre = float(hit_rates[FAIL_STEP - 10:FAIL_STEP].mean())
    post = float(hit_rates[FAIL_STEP:FAIL_STEP + 5].mean())
    return {
        "replicated": replicated,
        "records_lost": lost,
        "records_recovered": recovered,
        "hit_rate_before": pre,
        "hit_rate_after": post,
        "dip": pre - post,
    }


def test_availability_under_node_loss(benchmark):
    results = benchmark.pedantic(lambda: [_run(False), _run(True)],
                                 rounds=1, iterations=1)
    emit("ext_availability", ascii_table(
        ["config", "records lost", "recovered", "hit rate before",
         "hit rate after", "dip"],
        [[("replicated" if r["replicated"] else "unprotected"),
          r["records_lost"], r["records_recovered"], r["hit_rate_before"],
          r["hit_rate_after"], r["dip"]] for r in results],
        title=f"Extension H: node failure at step {FAIL_STEP} "
              "(mid-burst, mini scale)"))

    unprotected, replicated = results
    benchmark.extra_info.update({
        "dip_unprotected": unprotected["dip"],
        "dip_replicated": replicated["dip"],
    })

    # The failure destroyed real state...
    assert unprotected["records_lost"] > 50
    # ...which shows as a hit-rate dip without replication...
    assert unprotected["dip"] > 0.1
    # ...and replication recovers nearly everything, flattening the dip.
    assert replicated["records_recovered"] >= 0.9 * replicated["records_lost"]
    assert replicated["dip"] < 0.5 * unprotected["dip"]
