"""Overload protection under offered loads of 1x/2x/4x server capacity.

A single live server is given a deliberately tiny work budget
(``max_workers`` concurrent ops of ``OP_DELAY_S`` synthetic service time
each, plus a bounded admission queue of ``max_queue``).  Closed-loop
client threads then offer 1x, 2x and 4x that capacity.  The point of the
experiment is the *shape* of the degradation:

* without admission control, 4x load means an unbounded backlog — every
  queued request waits behind all earlier ones and p99 grows without
  limit until the node dies;
* with the gate, the queue depth is capped, the excess is refused with
  ``{"ok": false, "error": "overloaded", "retry_after_ms": n}``, and the
  p99 of *admitted* requests stays flat — overload shows up as shed rate,
  not as death.

Emits a per-load-level table (throughput, shed rate, latency
percentiles, peak queue depth) to ``benchmarks/results/bench_overload.txt``.
"""

import threading
import time

import numpy as np
import pytest

from benchmarks._util import emit
from repro.faults import RetryPolicy
from repro.live.client import LiveCacheClient
from repro.live.protocol import OverloadedError, ProtocolError
from repro.live.server import LiveCacheServer

MAX_WORKERS = 2          #: concurrent ops the server executes
MAX_QUEUE = 2            #: bounded admission queue beyond the workers
OP_DELAY_S = 0.005       #: synthetic service time per op (holding a slot)
OPS_PER_THREAD = 120
VALUE = b"overload-bench-value" * 4
#: offered load as closed-loop threads per level; MAX_WORKERS threads keep
#: every worker busy with no queueing = 1x capacity.
LEVELS = {"1x": MAX_WORKERS, "2x": 2 * MAX_WORKERS, "4x": 4 * MAX_WORKERS}
#: no client-side retry — a shed must surface as a shed, not hide
#: behind a successful second attempt.
NO_RETRY = RetryPolicy(max_attempts=1, deadline_s=5.0,
                       base_delay_s=0.001, max_delay_s=0.001)


def _worker(address, start: threading.Event, out: dict) -> None:
    """One closed-loop client: fire ops back-to-back, tally outcomes."""
    latencies: list[float] = []
    shed = 0
    errors = 0
    client = LiveCacheClient(address, timeout=5.0, retry=NO_RETRY)
    try:
        start.wait()
        for i in range(OPS_PER_THREAD):
            t0 = time.monotonic()
            try:
                client.put(i, VALUE)
                latencies.append(time.monotonic() - t0)
            except OverloadedError:
                shed += 1
            except ProtocolError:
                errors += 1
    finally:
        client.close()
    out["latencies"] = latencies
    out["shed"] = shed
    out["errors"] = errors


def _offer_load(address, n_threads: int) -> dict:
    """Run ``n_threads`` closed-loop clients; aggregate their outcomes."""
    start = threading.Event()
    results = [{} for _ in range(n_threads)]
    threads = [
        threading.Thread(target=_worker, args=(address, start, results[i]))
        for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    start.set()
    t0 = time.monotonic()
    for t in threads:
        t.join()
    elapsed = time.monotonic() - t0
    lat = np.array(sorted(x for r in results for x in r["latencies"]))
    shed = sum(r["shed"] for r in results)
    errors = sum(r["errors"] for r in results)
    attempted = n_threads * OPS_PER_THREAD
    return {
        "attempted": attempted,
        "ok": int(lat.size),
        "shed": shed,
        "errors": errors,
        "shed_rate": shed / attempted,
        "elapsed_s": elapsed,
        "throughput": lat.size / elapsed if elapsed else 0.0,
        "p50_ms": float(np.percentile(lat, 50)) * 1e3 if lat.size else 0.0,
        "p99_ms": float(np.percentile(lat, 99)) * 1e3 if lat.size else 0.0,
    }


@pytest.mark.slow
def test_overload_shed_keeps_p99_bounded(benchmark):
    def run() -> dict:
        levels = {}
        for label, n_threads in LEVELS.items():
            # Fresh server per level so gate counters (peak queue depth,
            # sheds) are attributable to that level alone.
            server = LiveCacheServer(
                capacity_bytes=1 << 22, max_workers=MAX_WORKERS,
                max_queue=MAX_QUEUE, op_delay_s=OP_DELAY_S).start()
            try:
                stats = _offer_load(server.address, n_threads)
                probe = LiveCacheClient(server.address, timeout=5.0)
                server_stats = probe.stats()
                probe.close()
                stats["peak_queue_depth"] = server_stats["peak_queue_depth"]
                stats["server_shed"] = server_stats["shed_overload"]
                levels[label] = stats
            finally:
                server.stop()
        return levels

    levels = benchmark.pedantic(run, rounds=1, iterations=1)

    # Hard guarantees, per the overload model (DESIGN.md sec. 7): queue
    # depth is bounded by the gate at every load level; at 4x the excess
    # surfaces as shed rate while the p99 of admitted ops stays flat
    # (worst admitted wait ~= (max_queue/max_workers + 1) * op_delay).
    for label, s in levels.items():
        assert s["errors"] == 0, f"{label}: unexpected transport errors"
        assert s["peak_queue_depth"] <= MAX_QUEUE, label
        assert s["p99_ms"] <= 250.0, f"{label}: p99 {s['p99_ms']:.1f} ms"
    assert levels["4x"]["shed"] > 0, "4x offered load must shed"
    assert levels["4x"]["shed_rate"] >= levels["1x"]["shed_rate"]

    lines = [
        "overload protection: closed-loop offered load vs a "
        f"{MAX_WORKERS}-worker/{MAX_QUEUE}-queue server "
        f"({OP_DELAY_S * 1e3:.0f} ms synthetic service time):",
        "",
        f"{'load':>5} {'attempted':>9} {'ok':>6} {'shed':>6} "
        f"{'shed_rate':>9} {'p50_ms':>7} {'p99_ms':>7} {'peak_q':>6} "
        f"{'ops/s':>7}",
    ]
    for label, s in levels.items():
        lines.append(
            f"{label:>5} {s['attempted']:>9} {s['ok']:>6} {s['shed']:>6} "
            f"{s['shed_rate']:>9.3f} {s['p50_ms']:>7.2f} "
            f"{s['p99_ms']:>7.2f} {s['peak_queue_depth']:>6} "
            f"{s['throughput']:>7.0f}")
    lines += [
        "",
        "invariant: queue depth stays <= max_queue and p99 stays flat at "
        "every level;",
        "excess load surfaces as shed rate (refusals with retry_after_ms),"
        " not as latency collapse.",
    ]
    emit("bench_overload", "\n".join(lines))
    benchmark.extra_info["shed_rate_4x"] = levels["4x"]["shed_rate"]
    benchmark.extra_info["p99_ms_4x"] = levels["4x"]["p99_ms"]
