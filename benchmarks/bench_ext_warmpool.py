"""Extension E — warm-pool preloading vs synchronous allocation.

Sec. VI: "asynchronous preloading of EC2 instances ... can also be used to
further minimize this overhead".  Re-runs the Fig. 3/4 workload with a
warm pool as the cache's node source and compares per-split allocation
waits and total overhead against the baseline (Fig. 4).
"""

import numpy as np

from benchmarks._util import emit
from repro.experiments.configs import fig3_params
from repro.experiments.harness import build_elastic, make_trace, run_trace
from repro.experiments.report import ascii_table
from repro.extensions.warmpool import WarmPool


def _run(spares: int):
    params = fig3_params("mini")
    trace = make_trace(params)
    bundle = build_elastic(params)
    if spares:
        pool = WarmPool(bundle.cloud, spares=spares)
        # Rewire provisioning through the pool for subsequent allocations.
        bundle.cache._node_source = pool.acquire
        bundle.clock.reset()  # pool prefill happens before the experiment
    run_trace(bundle, trace)
    events = bundle.cache.gba.split_events
    waits = [e.allocation_s for e in events]
    return {
        "spares": spares,
        "splits": len(events),
        "mean_alloc_wait_s": float(np.mean(waits)) if waits else 0.0,
        "max_alloc_wait_s": float(np.max(waits)) if waits else 0.0,
        "total_overhead_s": float(sum(e.overhead_s for e in events)),
        "cost_usd": bundle.cloud.cost_so_far(),
    }


def test_warmpool_hides_allocation_latency(benchmark):
    results = benchmark.pedantic(lambda: [_run(0), _run(1), _run(2)],
                                 rounds=1, iterations=1)
    emit("ext_warmpool", ascii_table(
        ["spares", "splits", "mean alloc wait (s)", "max alloc wait (s)",
         "total overhead (s)", "cost ($)"],
        [[r["spares"], r["splits"], r["mean_alloc_wait_s"],
          r["max_alloc_wait_s"], r["total_overhead_s"], r["cost_usd"]]
         for r in results],
        title="Extension E: warm-pool preloading vs cold allocation"))

    cold, warm1, warm2 = results
    benchmark.extra_info.update({
        "cold_overhead_s": cold["total_overhead_s"],
        "warm1_overhead_s": warm1["total_overhead_s"],
    })

    # The pool slashes allocation waits and hence total split overhead.
    assert cold["mean_alloc_wait_s"] > 10.0
    assert warm1["mean_alloc_wait_s"] < 0.5 * cold["mean_alloc_wait_s"]
    assert warm1["total_overhead_s"] < 0.6 * cold["total_overhead_s"]
    assert warm2["mean_alloc_wait_s"] <= warm1["mean_alloc_wait_s"] + 1.0
