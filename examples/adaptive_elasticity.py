#!/usr/bin/env python
"""The paper's future work, composed: a stall-free elastic cache.

Sec. VI lists the mitigations for GBA's one real weakness — node
allocation landing on query latency: asynchronous preloading, record
prefetching, and a dynamically managed window.  This example runs the
paper's flash-crowd workload through vanilla GBA and through the tuned
system (warm pool + predictive pre-splits + adaptive window) and shows
where the minutes of allocation stall went.

Run:  python examples/adaptive_elasticity.py
"""

import numpy as np

from repro.experiments.configs import fig5_params
from repro.experiments.harness import build_elastic, make_trace, run_trace
from repro.experiments.report import ascii_table
from repro.extensions.tuned import build_tuned, run_tuned
from repro.viz import line_chart


def step_latencies(metrics):
    return np.array([s.mean_latency_s for s in metrics.steps if s.queries])


def main() -> None:
    params = fig5_params(window_slices=100, scale="mini")
    trace = make_trace(params)
    floor = params.timings.service_time_s + params.timings.miss_overhead_s

    print("Running vanilla GBA over the phased flash-crowd workload...")
    vanilla_bundle = build_elastic(params)
    vanilla = run_trace(vanilla_bundle, trace)

    print("Running the tuned system (warm pool + prefetch + adaptive m)...\n")
    tuned_system = build_tuned(params, spares=1, query_budget=1500)
    tuned = run_tuned(tuned_system, trace)

    rows = []
    for name, metrics, cloud in (
        ("vanilla GBA", vanilla, vanilla_bundle.cloud),
        ("tuned", tuned, tuned_system.cloud),
    ):
        lat = step_latencies(metrics)
        rows.append([
            name,
            f"{lat.max() - floor:.1f} s",
            f"{metrics.summary(23.0)['final_speedup']:.2f}x",
            f"{metrics.mean_node_count():.1f}",
            f"${cloud.cost_so_far():.2f}",
        ])
    print(ascii_table(
        ["system", "worst stall beyond service time", "speedup",
         "mean nodes", "bill"], rows,
        title="Where did the allocation stalls go?"))

    print()
    print(line_chart(
        {"vanilla": step_latencies(vanilla), "tuned": step_latencies(tuned)},
        title="Per-step mean latency (spikes = boots/migrations on the "
              "query path)",
        y_label="seconds", height=12))

    pool = tuned_system.pool
    print(f"\nWarm pool: {pool.acquisitions} node acquisitions, "
          f"mean inline wait {pool.mean_wait_s:.2f} s "
          f"(cold boots average {tuned_system.cloud.boot_mean_s:.0f} s).")
    print(f"Prefetch: {len(tuned_system.prefetch.presplit_events)} splits "
          "executed at step boundaries instead of on queries.")
    print(f"Adaptive window: m ended at "
          f"{tuned_system.cache.evictor.m} slices "
          f"(started at {params.eviction.window_slices}).")


if __name__ == "__main__":
    main()
