#!/usr/bin/env python
"""Service composition: cached building blocks in workflow plans.

The paper's Auspice integration story (Secs. I, V): services are "strung
together like building-blocks", and the cache's API lets the workflow
system "compose derived results directly into workflow plans".  Here, two
overlapping map-mashup workflows — a regional situation map and a coastal
navigation chart — share shoreline tiles; the second plan reuses every
shared derived result from the cooperative cache.

Run:  python examples/composite_mashup.py
"""

import numpy as np

from repro import (
    CacheConfig,
    ElasticCooperativeCache,
    ExperimentTimings,
    NetworkModel,
    ShorelineExtractionService,
    SimClock,
    SimulatedCloud,
    SyntheticService,
)
from repro.sfc import Linearizer
from repro.workflow import CachePlanner, ServiceDAG


def build_situation_map(shoreline, overlay, lin, hour):
    """Shorelines for a 2x2 tile block + a traffic overlay, composed."""
    dag = ServiceDAG(f"situation-map@{hour}h")
    tiles = []
    for dx in range(2):
        for dy in range(2):
            name = f"tile-{dx}{dy}"
            dag.add_task(name, shoreline, key=lin.encode(4 + dx, 4 + dy, hour))
            tiles.append(name)
    dag.add_task("traffic", overlay, key=hour)
    dag.add_task("compose", overlay, key=1000 + hour, upstream=tiles + ["traffic"],
                 combine=lambda own, ups: {"layers": len(ups), "base": own})
    return dag


def build_navigation_chart(shoreline, overlay, lin, hour):
    """Overlapping tile block (shares 2 tiles) + depth soundings."""
    dag = ServiceDAG(f"nav-chart@{hour}h")
    tiles = []
    for dx in range(2):
        for dy in range(2):
            name = f"tile-{dx}{dy}"
            dag.add_task(name, shoreline, key=lin.encode(5 + dx, 4 + dy, hour))
            tiles.append(name)
    dag.add_task("soundings", overlay, key=2000 + hour)
    dag.add_task("compose", overlay, key=3000 + hour, upstream=tiles + ["soundings"],
                 combine=lambda own, ups: {"layers": len(ups), "base": own})
    return dag


def main() -> None:
    clock = SimClock()
    cloud = SimulatedCloud(clock=clock, rng=np.random.default_rng(3))
    cache = ElasticCooperativeCache(
        cloud=cloud, network=NetworkModel(),
        config=CacheConfig(ring_range=1 << 48, hash_mode="splitmix",
                           node_capacity_bytes=1 << 20))
    clock.reset()
    planner = CachePlanner(cache, clock, timings=ExperimentTimings())

    lin = Linearizer(nbits=6)
    shoreline = ShorelineExtractionService(clock, linearizer=lin,
                                           service_time_s=23.0)
    overlay = SyntheticService(clock, service_time_s=8.0, name="overlay")

    print("Running the situation-map workflow (cold cache)...")
    r1 = planner.run(build_situation_map(shoreline, overlay, lin, hour=6))
    print(f"  {r1.tasks_total} tasks, {r1.tasks_from_cache} from cache, "
          f"{r1.virtual_seconds:.0f} virtual seconds\n")

    print("Running the navigation-chart workflow (overlapping tiles)...")
    r2 = planner.run(build_navigation_chart(shoreline, overlay, lin, hour=6))
    print(f"  {r2.tasks_total} tasks, {r2.tasks_from_cache} from cache "
          f"(the shared shoreline tiles), {r2.virtual_seconds:.0f} virtual s\n")

    print("Re-running the situation map an hour later (same tiles, new time)...")
    r3 = planner.run(build_situation_map(shoreline, overlay, lin, hour=7))
    print(f"  {r3.tasks_from_cache}/{r3.tasks_total} from cache — new time of "
          "interest means new shorelines, so tiles recompute\n")

    print("Re-running the original situation map (fully warm)...")
    r4 = planner.run(build_situation_map(shoreline, overlay, lin, hour=6))
    print(f"  {r4.tasks_from_cache}/{r4.tasks_total} from cache, "
          f"{r4.virtual_seconds:.1f} virtual seconds "
          f"({r1.virtual_seconds / max(r4.virtual_seconds, 1e-9):.0f}x faster)")

    stats = cache.stats()
    print(f"\nCache now holds {stats['records']} derived results on "
          f"{stats['nodes']} node(s).")


if __name__ == "__main__":
    main()
