#!/usr/bin/env python
"""A real cooperative cache cluster on localhost TCP.

Everything else in this repository simulates the cloud for faithful
reproduction; this example runs the same design *for real*: three cache
server processes (threads) speaking the wire protocol, a consistent-hash
cluster client, derived shoreline results cached as bytes, and an
Algorithm-2 interval migration onto a fourth server added live.

Run:  python examples/live_cluster.py
"""

import time

from repro.live import LiveCacheServer, LiveClusterClient
from repro.services.ctm import CoastalTerrainModel
from repro.services.shoreline import ShorelineExtractionService
from repro.sfc import Linearizer
from repro.sim import SimClock


def main() -> None:
    # --- three cache nodes ------------------------------------------------
    servers = [LiveCacheServer(capacity_bytes=64 * 1024 * 1024).start()
               for _ in range(3)]
    print("Started cache servers:",
          ", ".join(f"{h}:{p}" for h, p in (s.address for s in servers)))

    lin = Linearizer(nbits=6)
    service = ShorelineExtractionService(SimClock(), linearizer=lin,
                                         ctm=CoastalTerrainModel(grid=24))

    with LiveClusterClient([s.address for s in servers],
                           ring_range=1 << 18) as cluster:
        # --- cache 200 real derived results over the wire ------------------
        keys = [lin.encode(x, y, t)
                for x in range(0, 64, 13) for y in range(0, 64, 13)
                for t in range(0, 64, 8)]
        t0 = time.perf_counter()
        for key in keys:
            payload, _ = service.compute(key)
            cluster.put(key, payload)
        put_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        hits = sum(cluster.get(key) is not None for key in keys)
        get_s = time.perf_counter() - t0
        print(f"\nCached {len(keys)} shoreline results "
              f"({put_s * 1e3:.0f} ms), re-read all {hits} "
              f"({get_s * 1e3:.0f} ms, "
              f"{get_s / len(keys) * 1e6:.0f} µs/hit over TCP)")

        for name, stats in cluster.cluster_stats().items():
            print(f"  {name}: {stats['records']} records, "
                  f"{stats['used_bytes']} B")

        # --- grow the cluster live (Algorithm 2 over the wire) -------------
        print("\nAdding a fourth server and splitting the busiest interval...")
        new_server = LiveCacheServer(capacity_bytes=64 * 1024 * 1024).start()
        servers.append(new_server)
        loads = {addr: cluster.clients[addr].stats()["records"]
                 for addr in cluster.clients}
        busiest_addr = max(loads, key=loads.get)
        busiest_bucket = max(cluster.ring.buckets_of(busiest_addr),
                             key=lambda b: cluster.ring.bucket_records[b])
        lo, hi = cluster.ring.interval_segments(busiest_bucket)[-1]
        moved = cluster.add_server(new_server.address, (lo + hi) // 2)
        print(f"  migrated {moved} records to "
              f"{new_server.address[0]}:{new_server.address[1]}")

        lost = sum(cluster.get(key) is None for key in keys)
        print(f"  post-migration verification: {len(keys) - lost}/{len(keys)} "
              "results still served")

        for name, stats in cluster.cluster_stats().items():
            print(f"  {name}: {stats['records']} records")

        # --- and contract again (interest waned) ---------------------------
        print("\nInterest waned — draining the new server back out...")
        drained = cluster.remove_server(new_server.address)
        lost = sum(cluster.get(key) is None for key in keys)
        print(f"  drained {drained} records to the survivors; "
              f"{len(keys) - lost}/{len(keys)} still served on "
              f"{len(cluster.clients)} nodes")

    for s in servers:
        s.stop()
    print("\nCluster shut down cleanly.")


if __name__ == "__main__":
    main()
