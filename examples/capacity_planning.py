#!/usr/bin/env python
"""Capacity planning from workload analysis — before spending a dollar.

Given a recorded query trace, the reuse-distance CDF *is* the LRU hit-rate
curve, so fleet sizing can be done analytically and only then validated in
simulation.  This example:

1. records a flash-crowd trace and profiles its redundancy,
2. predicts the hit rate of every static fleet size from reuse distances,
3. validates the prediction against live static-N simulations,
4. prices the options (including the elastic cache) with the cost model.

Run:  python examples/capacity_planning.py
"""


from repro.analysis.cost import cost_breakdown
from repro.experiments.configs import ExperimentParams
from repro.experiments.harness import build_elastic, build_static, make_trace, run_trace
from repro.experiments.report import ascii_table
from repro.workload import RateSchedule
from repro.workload.distributions import ZipfPicker
from repro.workload.stats import popularity_profile, reuse_distances, lru_hit_curve


def main() -> None:
    params = ExperimentParams(
        name="capacity-planning",
        keyspace_size=4096,
        schedule=RateSchedule.constant(rate=40, steps=250),
        records_per_node=250,
        seed=5,
    )
    trace = make_trace(params, picker=ZipfPicker(s=1.1))
    keys = trace.keys.tolist()

    # ---- 1. profile the workload -----------------------------------------
    prof = popularity_profile(keys)
    print(f"Trace: {prof.total} queries, {prof.distinct} distinct keys, "
          f"zipf exponent ≈ {prof.zipf_exponent:.2f}, "
          f"hottest key takes {prof.top1_share:.1%} of traffic\n")

    # ---- 2. analytic hit-rate curve ---------------------------------------
    distances = reuse_distances(keys)
    per_node = params.records_per_node
    fleet_sizes = [1, 2, 4, 8]
    predicted = lru_hit_curve(distances, [n * per_node for n in fleet_sizes])

    # ---- 3. validate against live simulations ----------------------------
    rows = []
    for n, pred in zip(fleet_sizes, predicted):
        bundle = build_static(params, n)
        metrics = run_trace(bundle, trace)
        measured = metrics.overall_hit_rate
        cb = cost_breakdown(metrics, bundle.cloud)
        rows.append([f"static-{n}", f"{pred:.1%}", f"{measured:.1%}",
                     f"{metrics.summary(23.0)['final_speedup']:.2f}x",
                     f"${cb.total_usd:.2f}"])

    elastic = build_elastic(params)
    em = run_trace(elastic, trace)
    ecb = cost_breakdown(em, elastic.cloud)
    rows.append(["elastic (GBA)", "-", f"{em.overall_hit_rate:.1%}",
                 f"{em.summary(23.0)['final_speedup']:.2f}x",
                 f"${ecb.total_usd:.2f}"])

    print(ascii_table(
        ["fleet", "predicted hit rate", "measured hit rate", "speedup", "bill"],
        rows, title="Analytic sizing vs simulation (per-node capacity "
                    f"{per_node} records)"))

    # The analytic curve is exact for single-node LRU and a close upper
    # bound for mod-N fleets (per-node LRU slightly fragments capacity).
    print("\nNote: predictions are exact for one LRU pool; mod-N splits the "
          "LRU into per-node pools, costing a point or two of hit rate.")


if __name__ == "__main__":
    main()
