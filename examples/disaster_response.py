#!/usr/bin/env python
"""Disaster response: a query-intensive event, end to end.

Recreates the paper's motivating scenario (Sec. I): a catastrophic event
triggers a flash crowd of related map/shoreline requests over a small hot
region.  The elastic cache scales up through the burst, then contracts as
interest wanes — while a memcached-style static fleet either
under-provisions (low hit rate at peak) or over-pays (idle nodes after).

Run:  python examples/disaster_response.py
"""


from repro import RateSchedule
from repro.experiments.configs import ExperimentParams
from repro.core.config import ContractionConfig, EvictionConfig
from repro.experiments.harness import build_elastic, build_static, make_trace, run_trace
from repro.experiments.report import ascii_table
from repro.workload.distributions import HotspotPicker


def timeline(label, metrics, stride=25):
    nodes = metrics.series("node_count")
    hits = metrics.series("hits")
    queries = metrics.series("queries")
    rows = []
    for i in range(0, len(nodes), stride):
        rate = hits[i] / queries[i] if queries[i] else 0.0
        bar = "#" * int(nodes[i])
        rows.append([i, int(queries[i]), f"{rate:.0%}", int(nodes[i]), bar])
    print(ascii_table(["step", "rate", "hit%", "nodes", ""],
                      rows, title=label))
    print()


def main() -> None:
    params = ExperimentParams(
        name="disaster-response",
        keyspace_size=8192,
        schedule=RateSchedule.phased(normal=20, intensive=120,
                                     normal_steps=60, intensive_steps=120,
                                     cooldown_steps=140),
        records_per_node=300,
        eviction=EvictionConfig(window_slices=60, alpha=0.99),
        contraction=ContractionConfig(epsilon_slices=5, merge_threshold=0.65),
        seed=11,
    )
    # Flash crowds are concentrated: 80 % of queries hit 5 % of the region.
    trace = make_trace(params, picker=HotspotPicker(hot_fraction=0.8,
                                                    hot_set_fraction=0.05))
    print(f"Workload: {trace.total_queries} queries over {trace.total_steps} "
          f"steps; burst of {params.schedule.phases[1].rate}/step in the middle.\n")

    elastic = build_elastic(params)
    em = run_trace(elastic, trace)
    timeline("Elastic cache (GBA + sliding window m=60)", em)

    static = build_static(params, n_nodes=2)
    sm = run_trace(static, trace)

    rows = []
    for name, bundle, metrics in (("elastic", elastic, em),
                                  ("static-2", static, sm)):
        s = metrics.summary(23.0)
        rows.append([name, f"{s['hit_rate']:.1%}", f"{s['final_speedup']:.2f}x",
                     f"{metrics.mean_node_count():.1f}",
                     f"${bundle.cloud.cost_so_far():.2f}"])
    print(ascii_table(["system", "hit rate", "speedup", "mean nodes", "bill"],
                      rows, title="Outcome"))
    peak = em.windowed_speedup(23.0, 20).max()
    print(f"\nElastic peak speedup during the burst: {peak:.1f}x; "
          f"fleet contracted back to {int(em.series('node_count')[-1])} "
          f"node(s) once interest waned.")


if __name__ == "__main__":
    main()
