#!/usr/bin/env python
"""Quickstart: an elastic cooperative cache accelerating a real service.

Builds the full stack — simulated EC2 provider, consistent-hash cache,
shoreline-extraction service, coordinator — and replays a small query
stream, printing the hit rate, speedup, and elastic node allocation.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CacheConfig,
    Coordinator,
    ElasticCooperativeCache,
    EvictionConfig,
    ExperimentTimings,
    NetworkModel,
    ShorelineExtractionService,
    SimClock,
    SimulatedCloud,
)
from repro.sfc import Linearizer


def main() -> None:
    # --- substrate: a virtual clock and a simulated EC2 ------------------
    clock = SimClock()
    cloud = SimulatedCloud(clock=clock, rng=np.random.default_rng(42))
    network = NetworkModel()

    # --- the cooperative elastic cache -----------------------------------
    # Small per-node capacity so this demo shows splits; real deployments
    # leave node_capacity_bytes unset (the instance's usable memory).
    cache = ElasticCooperativeCache(
        cloud=cloud,
        network=network,
        config=CacheConfig(ring_range=1 << 18, node_capacity_bytes=200 * 1088),
        eviction=EvictionConfig(window_slices=None),  # infinite window
    )

    # --- the service being accelerated -----------------------------------
    linearizer = Linearizer(nbits=6)
    service = ShorelineExtractionService(clock, linearizer=linearizer)
    coordinator = Coordinator(
        cache=cache, service=service, clock=clock, network=network,
        timings=ExperimentTimings(),
    )

    # --- a query stream with realistic redundancy ------------------------
    rng = np.random.default_rng(7)
    print("Replaying 900 spatiotemporal queries (23 s virtual each on miss)...")
    for step in range(30):
        for _ in range(30):
            x, y = rng.integers(0, 8, size=2)
            t = rng.integers(0, 8)
            coordinator.query(linearizer.encode(int(x), int(y), int(t)))
        coordinator.end_step(cost_usd=cloud.cost_so_far())

    # --- results ----------------------------------------------------------
    m = coordinator.metrics
    summary = m.summary(baseline_s=23.0)
    print(f"\n  queries      : {summary['queries']}")
    print(f"  hit rate     : {summary['hit_rate']:.1%}")
    print(f"  speedup      : {summary['final_speedup']:.2f}x over always-compute")
    print(f"  cache nodes  : {cache.node_count} "
          f"(grew elastically from 1; {summary['max_nodes']:.0f} max)")
    print(f"  simulated EC2 bill: ${cloud.cost_so_far():.2f}")

    # A cached result is a real shoreline polyline:
    key = linearizer.encode(3, 5, 7)
    coordinator.query(key)
    segments = service.deserialize(cache.get(key).value.payload)
    print(f"\n  sample derived result: shoreline with {len(segments)} segments, "
          f"first at ({segments[0][0]:.2f}, {segments[0][1]:.2f})")


if __name__ == "__main__":
    main()
