#!/usr/bin/env python
"""Reproduce every figure in the paper's evaluation, in one run.

Prints the rows/series behind Figs. 3-7 (scaled Fig. 3/4; full paper scale
for Figs. 5-7).  The same runners back the pytest-benchmark harness in
``benchmarks/``; this script is the human-readable tour.

Run:  python examples/reproduce_paper.py [--fast]
"""

import sys
import time

from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7


def main() -> None:
    fast = "--fast" in sys.argv
    fig34_scale = "mini" if fast else "scaled"
    fig567_scale = "mini" if fast else "full"
    t0 = time.time()

    print("Fig. 3 — cache benefits, infinite window "
          "(paper: statics 1.15/1.34/2.0x, GBA >15.2x)")
    fig3 = run_fig3(fig34_scale)
    print(fig3.report(), "\n")

    print("Fig. 4 — node-splitting overhead (paper: allocation dominates)")
    fig4 = run_fig4(fig34_scale)
    print(f"  {len(fig4.events)} splits, "
          f"{fig4.splits_with_allocation} with allocation, "
          f"allocation share {fig4.allocation_fraction:.1%}, "
          f"total {fig4.total_overhead_s:.0f} virtual s\n")

    windows = (12, 25, 50, 100) if fast else (50, 100, 200, 400)
    print("Fig. 5 — speedup under eviction/contraction "
          "(paper: ~1.55x at m=50 ... ~8x at m=400)")
    print(run_fig5(fig567_scale, windows=windows).report(), "\n")

    print("Fig. 6 — reuse & eviction behaviour "
          "(paper: reuse peaks in the burst; m=400 keeps allocating after)")
    print(run_fig6(fig567_scale, windows=windows).report(), "\n")

    print("Fig. 7 — decay sweep at m=100 "
          "(paper: smaller alpha evicts harder, hits barely move)")
    print(run_fig7(fig567_scale).report(), "\n")

    print(f"Total wall time: {time.time() - t0:.1f} s "
          "(the paper needed days of EC2 for the same curves)")


if __name__ == "__main__":
    main()
